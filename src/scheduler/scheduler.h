// The asynchronous heterogeneous job scheduler — the runtime that turns the
// Fig. 1 picture into a concurrent system. Where core::HostSystem dispatches
// one job at a time on the caller's thread, sched::Scheduler owns, per
// AcceleratorKind, a pool of N worker threads, each with its *own* accelerator
// replica built from a core::AcceleratorFactory (lifting the host's
// one-per-kind restriction), all fed by one bounded MPMC priority queue.
//
//   submit()        -> std::future<core::JobResult>, with per-job priority,
//                      deadline, cooperative cancellation, and RetryPolicy
//                      (job.h)
//   submit_batch()  -> fan-out of a job vector, futures in submission order
//   drain()         -> block until every accepted job has finished; the
//                      scheduler keeps accepting new work afterwards
//   shutdown()      -> stop accepting, let in-flight jobs finish, complete
//                      still-queued jobs with ok=false in deterministic
//                      (priority, then FIFO) order; idempotent, run by ~
//
// Resilient execution (DESIGN.md §10): each attempt may be vetoed by the
// worker's deterministic fault injector (core::FaultyAccelerator — wired
// automatically when REBOOTING_FAULTS=<plan.json> is set) or refused by the
// worker's circuit breaker (breaker.h). Failed attempts retry with
// exponential backoff and deterministic jitter under the job's RetryPolicy,
// honoring its deadline and retry budget; jobs that opted into cpu_fallback
// fail over once to the classical-cpu pool when their replica's breaker is
// open or their attempts are exhausted. Results carry attempt counts, a
// fault log, and a `degraded` flag instead of a silent ok=false.
//
// Telemetry (when enabled): queue-depth gauges `sched.queue_depth.<kind>`,
// wait/service/latency histograms `sched.{wait,service,latency}_seconds`,
// per-kind counters `sched.jobs.<kind>` and `sched.busy_seconds.<kind>`, and
// outcome counters `sched.deadline_missed` / `sched.rejected` / `sched.shed`
// / `sched.cancelled` / `sched.flushed` / `sched.payload_exceptions`, plus
// the resilience counters `sched.attempts` / `sched.retries` /
// `sched.faults_injected` / `sched.breaker_open` / `sched.failover` /
// `sched.degraded`.
//
// Tracing (REBOOTING_TRACE, see telemetry/trace.h): every worker thread is
// named "<kind> worker <replica>", each executed job is a begin/end slice
// named after the job on its worker's track, the submit->dequeue->complete
// hand-off is a flow-arrow chain keyed by the job's submission seq, queue
// depth appears as a counter track per kind, and deadline-expiry /
// cancellation show up as instant markers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/accelerator.h"
#include "core/cache.h"
#include "core/faults.h"
#include "scheduler/breaker.h"
#include "scheduler/queue.h"

namespace rebooting::sched {

struct SchedulerConfig {
  /// Capacity of each per-kind submission queue.
  std::size_t queue_capacity = 1024;
  /// What a full queue does with the next submission.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Per-worker circuit breaker; the default threshold of 0 disables it.
  BreakerConfig breaker;
  /// Seed of the deterministic backoff jitter (RetryPolicy::jitter); retry
  /// timing is reproducible given the same seed and submission order.
  std::uint64_t jitter_seed = 0x5EEDBACCull;
  /// Honor REBOOTING_FAULTS=<plan.json>: add_pool wraps factories of covered
  /// kinds in core::FaultyAccelerator decorators. Off = this scheduler
  /// ignores the environment plan (used by the overhead bench's control).
  bool env_faults = true;
  /// Let idle workers steal queued jobs marked JobOptions::stealable from
  /// other kinds' pools (DESIGN.md §12). Off by default: stealing changes
  /// which replica runs a job, which only payloads that ignore their
  /// accelerator argument tolerate.
  bool work_stealing = false;
  /// How long a stealing-enabled worker waits on its own queue before
  /// looking for a victim pool.
  Clock::duration steal_poll = std::chrono::milliseconds(2);
  /// Sizing of the JobOptions::memo_key result cache (DESIGN.md §14).
  core::CacheConfig memo_cache = [] {
    core::CacheConfig c;
    c.name = "sched.memo";
    return c;
  }();
};

/// Point-in-time utilization snapshot of one kind's pool, aggregated over its
/// replicas.
struct PoolStats {
  std::size_t workers = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t in_flight = 0;  ///< popped and currently executing
  std::size_t jobs_completed = 0;
  core::Real busy_seconds = 0.0;
  /// Per-replica breaker health, indexed by replica.
  std::vector<ReplicaHealth> replicas;
  /// Replicas whose breaker is not closed (open or half-open).
  std::size_t breakers_open = 0;
};

/// One coherent snapshot of the whole scheduler — what rebootd serves for a
/// `status` request without poking individual metrics. Taken under the pool
/// map lock; each pool's counters are read without stopping the workers, so
/// the numbers are each individually consistent, not a global atomic cut.
struct SchedulerStats {
  bool accepting = true;
  std::uint64_t submitted = 0;    ///< submissions ever accepted (seq counter)
  std::size_t outstanding = 0;    ///< accepted but not yet completed
  // Time-slicing counters (DESIGN.md §12), scheduler-wide totals.
  std::uint64_t slices = 0;    ///< preemptible payload invocations
  std::uint64_t preempts = 0;  ///< slices that yielded to higher priority
  std::uint64_t resumes = 0;   ///< preempted jobs picked back up
  std::uint64_t steals = 0;    ///< jobs taken from another kind's queue
  // Memoization counters (DESIGN.md §14).
  std::uint64_t memo_hits = 0;    ///< submits replayed from the memo cache
  std::uint64_t memo_riders = 0;  ///< submits collapsed onto an in-flight job
  std::map<core::AcceleratorKind, PoolStats> pools;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config = {});
  /// Runs shutdown(); queued-but-unexecuted jobs complete with ok=false, so
  /// no future obtained from this scheduler is ever abandoned.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates the worker pool for `kind`: invokes `factory` `workers` times
  /// (each replica is owned by exactly one worker thread, so replicas never
  /// need internal locking) and starts the threads. One pool per kind; a
  /// duplicate kind throws std::invalid_argument. Thread-safe.
  void add_pool(core::AcceleratorKind kind, std::size_t workers,
                const core::AcceleratorFactory& factory);

  /// Asynchronously submits a self-contained job (payload captures whatever
  /// it runs on). Throws std::out_of_range when no pool of job.kind exists,
  /// std::invalid_argument on a null payload, std::runtime_error after
  /// shutdown(). Under kReject/kShedOldest backpressure the returned (or the
  /// shed victim's) future completes with ok=false rather than throwing.
  std::future<core::JobResult> submit(core::Job job, JobOptions opts = {});

  /// Same, but the payload receives the worker's own accelerator replica —
  /// the way to reach typed engine APIs on scheduler-constructed instances.
  std::future<core::JobResult> submit(std::string name,
                                      core::AcceleratorKind kind,
                                      DevicePayload payload,
                                      JobOptions opts = {});

  /// Submits a slice-based job (DESIGN.md §12). The payload is invoked
  /// repeatedly; each invocation is one time slice. When it returns a
  /// JobResult the job completes; when it returns std::nullopt ("yielded at
  /// a checkpoint", signalled through the YieldProbe once a higher-priority
  /// job is queued on this pool) the remainder is re-enqueued with its
  /// original submission seq — so it resumes at the front of its priority
  /// class — and the worker turns to the queue. Preemptible jobs bypass the
  /// retry/fault/breaker machinery: a slice is cheap to re-run from its own
  /// checkpoint, so resilience lives in the payload's checkpoint, not in
  /// attempt bookkeeping. Cancellation and deadlines are honored between
  /// slices (each slice re-transits the queue's pre-execution checks).
  std::future<core::JobResult> submit_preemptible(std::string name,
                                                  core::AcceleratorKind kind,
                                                  PreemptiblePayload payload,
                                                  JobOptions opts = {});

  /// Fan-out: submits every job, returns futures in submission order for the
  /// caller's fan-in (wait on all, then combine).
  std::vector<std::future<core::JobResult>> submit_batch(
      std::vector<core::Job> jobs, JobOptions opts = {});

  /// Blocks until every accepted job has completed (all queues empty, all
  /// workers idle). The scheduler continues accepting work afterwards —
  /// drain is a barrier, not an end-of-life.
  void drain();

  /// Stops accepting submissions, closes all queues, joins the workers
  /// (in-flight jobs finish normally), then completes every still-queued job
  /// with ok=false in queue (priority, then FIFO) order. Idempotent.
  void shutdown();

  /// False once shutdown() has begun.
  bool accepting() const {
    return accepting_.load(std::memory_order_acquire);
  }

  bool has_pool(core::AcceleratorKind kind) const;
  /// Queued (not yet running) jobs of `kind`; throws std::out_of_range when
  /// no such pool exists.
  std::size_t queue_depth(core::AcceleratorKind kind) const;
  PoolStats stats(core::AcceleratorKind kind) const;
  /// Snapshot of every pool plus the scheduler-level counters, in one struct.
  SchedulerStats stats() const;
  /// Per-replica health (breaker state, failure counts) of one pool, indexed
  /// by replica; throws std::out_of_range when no such pool exists.
  std::vector<ReplicaHealth> health(core::AcceleratorKind kind) const;

  /// Multi-line report of the pools, their replicas, and utilization — the
  /// concurrent counterpart of HostSystem::describe().
  std::string describe() const;

 private:
  /// Per-worker-thread resilience state (one per replica).
  struct Worker {
    CircuitBreaker breaker;
    explicit Worker(const BreakerConfig& config) : breaker(config) {}
  };

  struct Pool {
    core::AcceleratorKind kind;
    BoundedJobQueue queue;
    std::vector<std::shared_ptr<core::Accelerator>> replicas;
    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;
    // Pre-built telemetry names, so the hot path does no string assembly
    // beyond what the registry itself needs.
    std::string depth_gauge, jobs_counter, busy_counter;

    Pool(core::AcceleratorKind k, std::size_t capacity,
         BackpressurePolicy policy);
  };

  /// How one popped job left a worker.
  enum class Verdict {
    kCompleted,   ///< promise fulfilled with a JobResult
    kThrew,       ///< promise holds the payload's exception
    kFailedOver,  ///< job re-queued on (or completed by) the fallback pool
    kYielded,     ///< preempted mid-job; remainder re-queued (or completed)
  };

  Pool* find_pool(core::AcceleratorKind kind) const;
  static PoolStats snapshot_pool(const Pool& pool);
  /// Shared tail of submit/submit_preemptible: assign seq, push, handle
  /// backpressure verdicts.
  std::future<core::JobResult> enqueue(QueuedJob item, Pool* pool);
  void worker_loop(Pool& pool, core::Accelerator& replica, Worker& state,
                   std::size_t replica_index);
  /// Executes one dequeued job on this worker. `source` is the queue the job
  /// was popped or stolen from (and owed a task_done by the caller); a
  /// preempted remainder is re-enqueued there.
  void execute(Pool& pool, BoundedJobQueue& source, core::Accelerator& replica,
               core::Accelerator& target, core::FaultyAccelerator* faulty,
               Worker& state, QueuedJob item);
  /// One time slice of a preemptible job (no retry/fault machinery; see
  /// submit_preemptible).
  Verdict run_slice(Pool& pool, BoundedJobQueue& source,
                    core::Accelerator& replica, core::Accelerator& target,
                    QueuedJob& item, core::JobResult& out);
  /// Picks the deepest other pool's queue and steals its best stealable job.
  /// Uses try_lock on the pool map so a stealing worker can never deadlock
  /// against shutdown() (which joins workers while holding the map lock).
  std::optional<QueuedJob> steal_from_other_pool(const Pool& thief,
                                                 BoundedJobQueue*& source);
  /// The per-job retry/breaker/failover loop around payload execution.
  Verdict run_attempts(Pool& pool, core::Accelerator& replica,
                       core::Accelerator& target,
                       core::FaultyAccelerator* faulty, Worker& state,
                       QueuedJob& item, core::JobResult& out);
  bool failover_eligible(const RetryPolicy& retry, const QueuedJob& item,
                         const Pool& pool) const;
  /// Re-homes a job onto the classical-cpu pool, carrying its attempt count
  /// and fault log. The job's promise is either queued along with it or, if
  /// the fallback queue refuses, completed here — never abandoned.
  Verdict failover(QueuedJob&& item, std::uint64_t attempts,
                   std::vector<std::string>&& fault_log);
  Clock::duration backoff_delay(const RetryPolicy& retry, std::size_t attempt,
                                std::uint64_t seq) const;
  /// Completes a job that will never run (shed / flushed / closed race).
  void complete_unrun(QueuedJob&& item, const std::string& why,
                      const char* metric, core::JobDisposition disposition);
  void track_accept();
  void track_complete();

  // --- memoization (DESIGN.md §14) ----------------------------------------
  /// The single funnel for fulfilling a job's promise with a result: settles
  /// the job's memo flight (if it leads one) before completing, so riders
  /// can never outlive their leader. Every promise-with-value site goes
  /// through here.
  void fulfill(QueuedJob& item, core::JobResult&& result);
  /// Same funnel for the exception outcome: riders receive the exception
  /// their leader's payload threw.
  void fulfill_exception(QueuedJob& item, std::exception_ptr thrown);
  /// Removes the flight from the registry (no rider can attach afterwards),
  /// caches an ok + actually-executed result, and fans the outcome out to
  /// every rider — honoring each rider's own cancel/deadline at delivery.
  void settle_flight(const std::shared_ptr<MemoFlight>& flight,
                     const core::JobResult* result, std::exception_ptr thrown);
  /// Memo fast paths of submit(): replay a cached result, or join/lead the
  /// single-flight group. Returns the future to hand back, or nullopt when
  /// the job must enqueue normally (possibly now leading `flight_out`).
  std::optional<std::future<core::JobResult>> try_memo(
      const std::string& name, const JobOptions& opts,
      std::shared_ptr<MemoFlight>* flight_out);

  SchedulerConfig config_;
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> next_seq_{0};
  std::once_flag shutdown_once_;

  // Time-slicing counters (also exported as sched.{slices,preempt,resume,
  // steal} metrics and trace instants).
  std::atomic<std::uint64_t> slices_{0};
  std::atomic<std::uint64_t> preempts_{0};
  std::atomic<std::uint64_t> resumes_{0};
  std::atomic<std::uint64_t> steals_{0};

  // Memoization: the result cache and the in-flight single-flight registry.
  // flights_mutex_ is a leaf lock (never held while calling user code or
  // taking another scheduler lock).
  core::ShardedCache<core::JobResult> memo_cache_;
  std::mutex flights_mutex_;
  std::unordered_map<core::HashKey128, std::shared_ptr<MemoFlight>,
                     core::HashKey128Hash>
      flights_;
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_riders_{0};

  // drain() bookkeeping: accepted-but-uncompleted jobs. Counted at the
  // promise, not the queue, so a failover hop between pools can never open
  // a window where every queue looks idle while a job is mid-flight.
  mutable std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::size_t outstanding_ = 0;

  mutable std::mutex pools_mutex_;  ///< guards the map shape, not the pools
  std::map<core::AcceleratorKind, std::unique_ptr<Pool>> pools_;
};

}  // namespace rebooting::sched
