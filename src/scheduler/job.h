// Job-side vocabulary of the async scheduling runtime (src/scheduler/): the
// per-job knobs a submitter controls — priority, deadline, cooperative
// cancellation — and the queue entry that carries a job from submission to a
// worker thread.
//
// The paper's Fig. 1 host treats accelerators as shared throughput resources;
// once many clients contend for them, jobs need exactly these three controls:
// which work jumps the line (priority), which work is worthless if late
// (deadline), and which work the client no longer wants (cancellation).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/accelerator.h"
#include "core/cache.h"

namespace rebooting::sched {

using Clock = std::chrono::steady_clock;

/// Copyable cooperative-cancellation handle. All copies share one flag: the
/// submitter keeps a copy and calls cancel(); the scheduler checks it before
/// execution (a cancelled job completes ok=false without running), and a
/// payload may capture a copy to poll mid-execution for early exit.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// How hard the scheduler fights for a job before giving up — the per-job
/// half of the resilience layer (DESIGN.md §10). The defaults make a job
/// behave exactly as before the layer existed: one attempt, no backoff, no
/// failover.
struct RetryPolicy {
  /// Total execution attempts across all replicas and pools (>= 1; 0 is
  /// normalized to 1). An attempt refused by an open circuit breaker counts.
  std::size_t max_attempts = 1;
  /// Backoff before retry k (1-based) is
  ///   min(initial_backoff * backoff_multiplier^(k-1), max_backoff)
  /// stretched by a deterministic jitter drawn from
  /// Rng::stream(SchedulerConfig::jitter_seed, f(seq, k)).
  Clock::duration initial_backoff = std::chrono::milliseconds(1);
  core::Real backoff_multiplier = 2.0;
  Clock::duration max_backoff = std::chrono::milliseconds(100);
  /// Symmetric jitter fraction in [0, 1]: the backoff is scaled by a factor
  /// in [1 - jitter, 1 + jitter]. 0 = no jitter.
  core::Real jitter = 0.0;
  /// Total time the job may spend sleeping between attempts; once a backoff
  /// would exceed it, the job fails instead of retrying further.
  Clock::duration retry_budget = Clock::duration::max();
  /// Permit failover to the classical-cpu pool. Only safe for payloads that
  /// ignore their accelerator argument (self-contained core::Job closures);
  /// payloads that downcast to a typed engine API must leave this false.
  bool cpu_fallback = false;
};

/// Per-job scheduling controls, all optional.
struct JobOptions {
  /// Higher runs earlier; jobs of equal priority run in submission (FIFO)
  /// order within their kind's queue.
  int priority = 0;
  /// A job still queued past its deadline is not executed: it completes with
  /// ok=false and counts into the `sched.deadline_missed` metric. The retry
  /// layer also honors it between attempts: a backoff that would cross the
  /// deadline is not slept through.
  std::optional<Clock::time_point> deadline;
  /// Cooperative cancellation; see CancelToken.
  std::optional<CancelToken> cancel;
  /// Retries, backoff, and failover; default = single attempt.
  RetryPolicy retry;
  /// Permit an idle worker of a *different* kind's pool to steal this job
  /// while it is queued (SchedulerConfig::work_stealing). Like cpu_fallback,
  /// only safe for payloads that ignore their accelerator argument
  /// (self-contained core::Job closures); typed-downcast payloads must leave
  /// this false.
  bool stealable = false;
  /// Opt-in memoization (DESIGN.md §14). Non-empty = "this job is a pure
  /// function of this key": an identical key already cached replays the
  /// stored JobResult without executing, and identical keys in flight
  /// collapse into one execution with fanned-out futures (single-flight).
  /// The submitter owns key correctness — the scheduler cannot see inside
  /// the payload, so a key that omits an input silently replays the wrong
  /// result. Only ok=true, actually-executed results are ever cached.
  /// Ignored by submit_preemptible (a sliced job is a progress stream, not
  /// a pure function) and, like every cache layer, inert when
  /// core::cache_enabled() is off.
  std::string memo_key;
};

/// One in-flight memoized execution (single-flight). The first submitter of
/// a memo_key becomes the *leader* and executes normally; later identical
/// submitters become *riders*: their promises park here and are fulfilled
/// with a copy of the leader's outcome — result or exception — when it
/// settles. Riders' own cancel/deadline options are honored at delivery
/// time. Guarded by the scheduler's flight registry mutex.
struct MemoFlight {
  struct Rider {
    std::string name;
    JobOptions opts;
    std::promise<core::JobResult> promise;
  };

  core::HashKey128 key;
  std::vector<Rider> riders;
};

/// Deadline helper: `opts.deadline = deadline_in(std::chrono::milliseconds(5))`.
inline Clock::time_point deadline_in(Clock::duration d) {
  return Clock::now() + d;
}

/// A payload that receives the worker's own accelerator replica, so typed
/// engine APIs (quantum::QuantumAccelerator::run, ...) are reachable from a
/// pool whose instances the scheduler constructed internally. Downcast to the
/// concrete type of the pool's factory. Self-contained core::Job payloads are
/// wrapped into this form, ignoring the argument.
using DevicePayload = std::function<core::JobResult(core::Accelerator&)>;

/// The scheduler's preemption signal, handed to a preemptible payload at
/// every slice (DESIGN.md §12). The payload polls it at checkpoint
/// boundaries; once it reads true, the payload should save its checkpoint
/// and return std::nullopt, yielding the worker to the higher-priority job.
/// Ignoring the probe is legal — the job merely becomes non-preemptible.
class YieldProbe {
 public:
  YieldProbe() = default;
  explicit YieldProbe(std::function<bool()> should_yield)
      : should_yield_(std::move(should_yield)) {}

  bool should_yield() const { return should_yield_ && should_yield_(); }

 private:
  std::function<bool()> should_yield_;
};

/// A payload executed in scheduler time slices. Returning a JobResult
/// completes the job; returning std::nullopt means "yielded at a checkpoint":
/// the scheduler re-enqueues the remainder (same submission seq, so it
/// resumes at the front of its priority class) and calls the payload again
/// later — possibly on a different worker. The payload object itself carries
/// the resumable state across calls (e.g. a mutable lambda capturing a
/// core::Checkpoint), so it must not assume thread affinity.
using PreemptiblePayload = std::function<std::optional<core::JobResult>(
    core::Accelerator&, const YieldProbe&)>;

/// One queue entry: the job, its controls, the promise the submitter's
/// future is attached to, and the bookkeeping the scheduler needs for
/// ordering (seq) and wait-time accounting (enqueued_at).
struct QueuedJob {
  std::string name;
  core::AcceleratorKind kind = core::AcceleratorKind::kClassicalCpu;
  DevicePayload payload;
  /// Set instead of `payload` for slice-based jobs (submit_preemptible). The
  /// same object is re-enqueued across yields, so it owns the job's
  /// checkpoint state between slices.
  PreemptiblePayload preemptible;
  JobOptions opts;
  std::promise<core::JobResult> promise;
  std::uint64_t seq = 0;  ///< scheduler-global submission order, unique
  Clock::time_point enqueued_at{};
  // --- resilience bookkeeping carried across a failover hop ---------------
  std::uint64_t attempts_done = 0;  ///< attempts consumed before this queuing
  std::vector<std::string> fault_log;
  bool failed_over = false;  ///< already re-homed once; never hops again
  // --- preemption bookkeeping ---------------------------------------------
  bool resumed = false;  ///< re-enqueued after at least one yielded slice
  // --- memoization bookkeeping --------------------------------------------
  /// Set when this job leads a single-flight group; travels with the job
  /// across failover hops and preemption re-enqueues, and is settled exactly
  /// once, by whichever code path fulfills the leader's promise.
  std::shared_ptr<MemoFlight> memo_flight;
};

/// What a full queue does with the next submission.
enum class BackpressurePolicy {
  kBlock,      ///< submit() blocks until the queue has room
  kReject,     ///< the new job completes immediately with ok=false
  kShedOldest  ///< the longest-waiting queued job is evicted (ok=false)
};

std::string to_string(BackpressurePolicy policy);

}  // namespace rebooting::sched
