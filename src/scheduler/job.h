// Job-side vocabulary of the async scheduling runtime (src/scheduler/): the
// per-job knobs a submitter controls — priority, deadline, cooperative
// cancellation — and the queue entry that carries a job from submission to a
// worker thread.
//
// The paper's Fig. 1 host treats accelerators as shared throughput resources;
// once many clients contend for them, jobs need exactly these three controls:
// which work jumps the line (priority), which work is worthless if late
// (deadline), and which work the client no longer wants (cancellation).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "core/accelerator.h"

namespace rebooting::sched {

using Clock = std::chrono::steady_clock;

/// Copyable cooperative-cancellation handle. All copies share one flag: the
/// submitter keeps a copy and calls cancel(); the scheduler checks it before
/// execution (a cancelled job completes ok=false without running), and a
/// payload may capture a copy to poll mid-execution for early exit.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-job scheduling controls, all optional.
struct JobOptions {
  /// Higher runs earlier; jobs of equal priority run in submission (FIFO)
  /// order within their kind's queue.
  int priority = 0;
  /// A job still queued past its deadline is not executed: it completes with
  /// ok=false and counts into the `sched.deadline_missed` metric.
  std::optional<Clock::time_point> deadline;
  /// Cooperative cancellation; see CancelToken.
  std::optional<CancelToken> cancel;
};

/// Deadline helper: `opts.deadline = deadline_in(std::chrono::milliseconds(5))`.
inline Clock::time_point deadline_in(Clock::duration d) {
  return Clock::now() + d;
}

/// A payload that receives the worker's own accelerator replica, so typed
/// engine APIs (quantum::QuantumAccelerator::run, ...) are reachable from a
/// pool whose instances the scheduler constructed internally. Downcast to the
/// concrete type of the pool's factory. Self-contained core::Job payloads are
/// wrapped into this form, ignoring the argument.
using DevicePayload = std::function<core::JobResult(core::Accelerator&)>;

/// One queue entry: the job, its controls, the promise the submitter's
/// future is attached to, and the bookkeeping the scheduler needs for
/// ordering (seq) and wait-time accounting (enqueued_at).
struct QueuedJob {
  std::string name;
  core::AcceleratorKind kind = core::AcceleratorKind::kClassicalCpu;
  DevicePayload payload;
  JobOptions opts;
  std::promise<core::JobResult> promise;
  std::uint64_t seq = 0;  ///< scheduler-global submission order, unique
  Clock::time_point enqueued_at{};
};

/// What a full queue does with the next submission.
enum class BackpressurePolicy {
  kBlock,      ///< submit() blocks until the queue has room
  kReject,     ///< the new job completes immediately with ok=false
  kShedOldest  ///< the longest-waiting queued job is evicted (ok=false)
};

std::string to_string(BackpressurePolicy policy);

}  // namespace rebooting::sched
