// Bounded multi-producer/multi-consumer priority queue — the submission side
// of the async scheduler. One instance backs each per-kind worker pool.
//
// Ordering: strict priority (higher first), FIFO by submission sequence
// within a priority class. Capacity is enforced by one of three backpressure
// policies (job.h): block the producer, reject the newcomer, or shed the
// longest-waiting entry. The queue also tracks popped-but-unfinished work
// (task_done / wait_idle, in the spirit of Python's queue.join) so drain()
// can wait for true quiescence rather than just an empty queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "scheduler/job.h"

namespace rebooting::sched {

class BoundedJobQueue {
 public:
  enum class PushStatus { kAccepted, kRejected, kClosed };

  BoundedJobQueue(std::size_t capacity, BackpressurePolicy policy);

  /// Enqueues `item` (consumed only on kAccepted). When the queue is full:
  /// kBlock waits for room, kReject returns kRejected leaving `item` intact,
  /// kShedOldest evicts the entry with the smallest seq into `*shed` and
  /// accepts. Returns kClosed (item intact) once close() has been called.
  PushStatus push(QueuedJob& item, std::optional<QueuedJob>* shed);

  /// Blocks until an entry is available and returns the front of the
  /// priority order, or nullopt once the queue is closed. A successful pop
  /// marks one task in flight; the consumer must pair it with task_done().
  std::optional<QueuedJob> pop();

  /// As pop(), but gives up after `timeout`, returning nullopt. Used by
  /// work-stealing workers, which poll their own queue and then look for a
  /// victim; check closed() to distinguish a timeout from shutdown.
  std::optional<QueuedJob> pop_for(Clock::duration timeout);

  /// Re-enqueues a job a worker popped and then preempted mid-execution
  /// (consumed only on kAccepted; returns kClosed once close() has been
  /// called, leaving the item intact). Bypasses the capacity check — the job
  /// already held a queue slot when it was first admitted, so a yield must
  /// never block, shed, or reject. The entry keeps its original seq and so
  /// resumes at the front of its priority class.
  PushStatus push_resumed(QueuedJob& item);

  /// Removes the highest-priority entry whose JobOptions::stealable is set,
  /// or nullopt when there is none (or the queue is closed). Like pop(), a
  /// successful steal marks one task in flight *on this queue*: the thief
  /// must call this queue's task_done() when the stolen job finishes, which
  /// keeps wait_idle()/drain accounting exact across pools.
  std::optional<QueuedJob> try_steal();

  /// True when a queued entry outranks `priority` — the preemption signal a
  /// running low-priority job's YieldProbe polls at checkpoint boundaries.
  bool has_higher_priority_queued(int priority) const;

  /// True once close() has been called.
  bool closed() const;

  /// Marks one popped task finished (see pop / wait_idle).
  void task_done();

  /// Blocks until the queue is empty AND every popped task has been
  /// task_done()'d — i.e. the pool is quiescent. Returns immediately once
  /// closed.
  void wait_idle();

  /// Closes the queue: blocked and future push() calls return kClosed,
  /// pop() returns nullopt even while entries remain queued (they are
  /// retrieved with flush()), and wait_idle() unblocks.
  void close();

  /// Removes and returns every still-queued entry in pop (priority) order.
  /// Meant for the shutdown path, after close().
  std::vector<QueuedJob> flush();

  std::size_t size() const;
  /// Popped-but-not-yet-task_done()'d entries — the pool's running jobs.
  std::size_t in_flight() const;
  std::size_t capacity() const { return capacity_; }
  BackpressurePolicy policy() const { return policy_; }

 private:
  /// Priority order: higher priority first, then FIFO by seq. seq values are
  /// unique per scheduler, so this is a strict total order.
  struct Order {
    bool operator()(const QueuedJob& a, const QueuedJob& b) const {
      if (a.opts.priority != b.opts.priority)
        return a.opts.priority > b.opts.priority;
      return a.seq < b.seq;
    }
  };

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::set<QueuedJob, Order> items_;
  std::size_t capacity_;
  BackpressurePolicy policy_;
  std::size_t in_flight_ = 0;  ///< popped but not yet task_done()'d
  bool closed_ = false;
};

}  // namespace rebooting::sched
