#include "scheduler/scheduler.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/random.h"
#include "telemetry/telemetry.h"

namespace rebooting::sched {

namespace {

core::Real seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<core::Real>(b - a).count();
}

std::string attempt_prefix(std::uint64_t attempt) {
  return "attempt " + std::to_string(attempt) + ": ";
}

}  // namespace

Scheduler::Pool::Pool(core::AcceleratorKind k, std::size_t capacity,
                      BackpressurePolicy policy)
    : kind(k),
      queue(capacity, policy),
      depth_gauge("sched.queue_depth." + core::to_string(k)),
      jobs_counter("sched.jobs." + core::to_string(k)),
      busy_counter("sched.busy_seconds." + core::to_string(k)) {}

Scheduler::Scheduler(SchedulerConfig config)
    : config_(std::move(config)), memo_cache_(config_.memo_cache) {}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::add_pool(core::AcceleratorKind kind, std::size_t workers,
                         const core::AcceleratorFactory& factory) {
  if (workers == 0)
    throw std::invalid_argument("sched: pool needs at least one worker");
  if (!factory) throw std::invalid_argument("sched: null accelerator factory");

  // REBOOTING_FAULTS wiring: kinds covered by the environment plan get their
  // replicas built behind deterministic fault injectors.
  core::AcceleratorFactory build = factory;
  if (config_.env_faults) {
    if (const auto plan = core::FaultPlan::from_env()) {
      const core::FaultSpec* spec = plan->spec_for(kind);
      if (spec && spec->enabled())
        build = core::FaultyAccelerator::wrap(build, plan);
    }
  }

  auto pool = std::make_unique<Pool>(kind, config_.queue_capacity,
                                     config_.backpressure);
  pool->replicas.reserve(workers);
  pool->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    auto replica = build();
    if (!replica)
      throw std::invalid_argument("sched: factory returned a null accelerator");
    if (replica->kind() != kind)
      throw std::invalid_argument(
          "sched: factory built a '" + core::to_string(replica->kind()) +
          "' accelerator for the '" + core::to_string(kind) + "' pool");
    pool->replicas.push_back(std::move(replica));
    pool->workers.push_back(std::make_unique<Worker>(config_.breaker));
  }

  // The map insert and the thread starts stay under one lock so shutdown()
  // can never observe a pool with a half-built thread vector.
  std::lock_guard lock(pools_mutex_);
  if (!accepting())
    throw std::runtime_error("sched: add_pool after shutdown");
  auto [it, inserted] = pools_.emplace(kind, std::move(pool));
  if (!inserted)
    throw std::invalid_argument(
        "sched: pool for kind '" + core::to_string(kind) +
        "' already exists (" + std::to_string(it->second->replicas.size()) +
        " worker(s)); size a pool via the `workers` argument instead of "
        "adding it twice");
  Pool& p = *it->second;
  for (std::size_t i = 0; i < workers; ++i)
    p.threads.emplace_back(&Scheduler::worker_loop, this, std::ref(p),
                           std::ref(*p.replicas[i]), std::ref(*p.workers[i]),
                           i);
}

Scheduler::Pool* Scheduler::find_pool(core::AcceleratorKind kind) const {
  std::lock_guard lock(pools_mutex_);
  const auto it = pools_.find(kind);
  if (it == pools_.end())
    throw std::out_of_range("sched: no worker pool for kind '" +
                            core::to_string(kind) + "'");
  return it->second.get();
}

std::future<core::JobResult> Scheduler::submit(core::Job job,
                                               JobOptions opts) {
  if (!job.payload)
    throw std::invalid_argument("sched: job '" + job.name +
                                "' has no payload");
  DevicePayload payload = [p = std::move(job.payload)](core::Accelerator&) {
    return p();
  };
  return submit(std::move(job.name), job.kind, std::move(payload),
                std::move(opts));
}

std::future<core::JobResult> Scheduler::submit(std::string name,
                                               core::AcceleratorKind kind,
                                               DevicePayload payload,
                                               JobOptions opts) {
  if (!payload)
    throw std::invalid_argument("sched: job '" + name + "' has no payload");
  if (!accepting())
    throw std::runtime_error("sched: submit('" + name + "') after shutdown");
  Pool* pool = find_pool(kind);

  std::shared_ptr<MemoFlight> flight;
  if (auto memoized = try_memo(name, opts, &flight)) return std::move(*memoized);

  QueuedJob item;
  item.name = std::move(name);
  item.kind = kind;
  item.payload = std::move(payload);
  item.opts = std::move(opts);
  item.memo_flight = std::move(flight);
  return enqueue(std::move(item), pool);
}

std::optional<std::future<core::JobResult>> Scheduler::try_memo(
    const std::string& name, const JobOptions& opts,
    std::shared_ptr<MemoFlight>* flight_out) {
  if (opts.memo_key.empty() || !core::cache_enabled()) return std::nullopt;
  core::HashWriter w;
  w.str(opts.memo_key);
  const core::HashKey128 key = w.finish();

  if (const auto cached = memo_cache_.get(key)) {
    // Replay. The submitter's own pre-execution gates still apply — a
    // cancelled or already-expired job must not look like it ran.
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("sched.memo_hit");
    TELEM_TRACE_INSTANT("sched.memo_hit");
    std::promise<core::JobResult> promise;
    auto future = promise.get_future();
    core::JobResult result;
    if (opts.cancel && opts.cancel->cancelled()) {
      result.disposition = core::JobDisposition::kCancelled;
      result.summary =
          "sched: job '" + name + "' cancelled before execution";
      telemetry::count("sched.cancelled");
      TELEM_TRACE_INSTANT("sched.cancelled");
    } else if (opts.deadline && Clock::now() >= *opts.deadline) {
      result.disposition = core::JobDisposition::kDeadlineMissed;
      result.summary = "sched: job '" + name + "' missed its deadline";
      telemetry::count("sched.deadline_missed");
      TELEM_TRACE_INSTANT("sched.deadline_expired");
    } else {
      result = *cached;
    }
    promise.set_value(std::move(result));
    return future;
  }

  std::lock_guard lock(flights_mutex_);
  const auto it = flights_.find(key);
  if (it != flights_.end()) {
    // Single-flight: ride the in-flight leader instead of executing again.
    memo_riders_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("sched.memo_rider");
    TELEM_TRACE_INSTANT("sched.memo_rider");
    MemoFlight::Rider rider;
    rider.name = name;
    rider.opts = opts;
    auto future = rider.promise.get_future();
    it->second->riders.push_back(std::move(rider));
    track_accept();
    return future;
  }
  // No cached result, no flight: this submission leads a new one.
  auto flight = std::make_shared<MemoFlight>();
  flight->key = key;
  flights_.emplace(key, flight);
  *flight_out = std::move(flight);
  return std::nullopt;
}

void Scheduler::fulfill(QueuedJob& item, core::JobResult&& result) {
  if (item.memo_flight) {
    settle_flight(item.memo_flight, &result, nullptr);
    item.memo_flight.reset();
  }
  item.promise.set_value(std::move(result));
  track_complete();
}

void Scheduler::fulfill_exception(QueuedJob& item, std::exception_ptr thrown) {
  if (item.memo_flight) {
    settle_flight(item.memo_flight, nullptr, thrown);
    item.memo_flight.reset();
  }
  item.promise.set_exception(std::move(thrown));
  track_complete();
}

void Scheduler::settle_flight(const std::shared_ptr<MemoFlight>& flight,
                              const core::JobResult* result,
                              std::exception_ptr thrown) {
  std::vector<MemoFlight::Rider> riders;
  {
    // Erase before delivering: once settled, a new identical submit starts a
    // fresh flight (or hits the cache) instead of attaching to this one.
    std::lock_guard lock(flights_mutex_);
    flights_.erase(flight->key);
    riders = std::move(flight->riders);
    flight->riders.clear();
  }
  if (result && result->ok &&
      result->disposition == core::JobDisposition::kExecuted) {
    // Only a genuine success is worth replaying; cancellations, deadline
    // misses, shed/flushed verdicts, and fault-storm failures must re-execute
    // next time.
    std::size_t bytes = sizeof(core::JobResult) + result->summary.size();
    for (const auto& [key, value] : result->metrics)
      bytes += key.size() + sizeof(value);
    for (const auto& line : result->fault_log) bytes += line.size();
    memo_cache_.put(flight->key, std::make_shared<core::JobResult>(*result),
                    bytes);
  }
  for (auto& rider : riders) {
    if (thrown) {
      rider.promise.set_exception(thrown);
    } else {
      core::JobResult fanned;
      if (rider.opts.cancel && rider.opts.cancel->cancelled()) {
        fanned.disposition = core::JobDisposition::kCancelled;
        fanned.summary = "sched: job '" + rider.name +
                         "' cancelled before execution";
        telemetry::count("sched.cancelled");
        TELEM_TRACE_INSTANT("sched.cancelled");
      } else if (rider.opts.deadline && Clock::now() >= *rider.opts.deadline) {
        fanned.disposition = core::JobDisposition::kDeadlineMissed;
        fanned.summary = "sched: job '" + rider.name +
                         "' missed its deadline";
        telemetry::count("sched.deadline_missed");
        TELEM_TRACE_INSTANT("sched.deadline_expired");
      } else {
        fanned = *result;
      }
      rider.promise.set_value(std::move(fanned));
    }
    track_complete();
  }
}

std::future<core::JobResult> Scheduler::submit_preemptible(
    std::string name, core::AcceleratorKind kind, PreemptiblePayload payload,
    JobOptions opts) {
  if (!payload)
    throw std::invalid_argument("sched: job '" + name + "' has no payload");
  if (!accepting())
    throw std::runtime_error("sched: submit('" + name + "') after shutdown");
  Pool* pool = find_pool(kind);

  QueuedJob item;
  item.name = std::move(name);
  item.kind = kind;
  item.preemptible = std::move(payload);
  item.opts = std::move(opts);
  return enqueue(std::move(item), pool);
}

std::future<core::JobResult> Scheduler::enqueue(QueuedJob item, Pool* pool) {
  item.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  item.enqueued_at = Clock::now();
  auto future = item.promise.get_future();
  track_accept();

  // The submit slice brackets the (possibly blocking) push, and the flow
  // arrow it contains starts the per-job submit -> dequeue -> complete chain.
  const std::uint64_t seq = item.seq;
  telemetry::TraceScope submit_scope(
      telemetry::trace_enabled() ? "sched.submit" : nullptr, "sched", seq);

  // push() may block (kBlock policy) — never under pools_mutex_.
  std::optional<QueuedJob> shed;
  const auto status = pool->queue.push(item, &shed);
  if (shed)
    complete_unrun(std::move(*shed), "shed by backpressure (queue full)",
                   "sched.shed", core::JobDisposition::kShed);
  switch (status) {
    case BoundedJobQueue::PushStatus::kAccepted:
      TELEM_TRACE_FLOW_BEGIN("job", seq);
      telemetry::gauge(pool->depth_gauge,
                       static_cast<core::Real>(pool->queue.size()));
      break;
    case BoundedJobQueue::PushStatus::kRejected:
      complete_unrun(std::move(item), "rejected by backpressure (queue full)",
                     "sched.rejected", core::JobDisposition::kRejected);
      break;
    case BoundedJobQueue::PushStatus::kClosed:
      complete_unrun(std::move(item), "not accepted: scheduler shut down",
                     "sched.flushed", core::JobDisposition::kFlushed);
      break;
  }
  return future;
}

std::vector<std::future<core::JobResult>> Scheduler::submit_batch(
    std::vector<core::Job> jobs, JobOptions opts) {
  std::vector<std::future<core::JobResult>> futures;
  futures.reserve(jobs.size());
  for (auto& job : jobs) futures.push_back(submit(std::move(job), opts));
  return futures;
}

void Scheduler::worker_loop(Pool& pool, core::Accelerator& replica,
                            Worker& state, std::size_t replica_index) {
  // Tags every slice this worker ever emits with its kind + replica: the
  // exported timeline shows one named track per replica per pool.
  telemetry::TraceRecorder::instance().set_thread_name(
      core::to_string(pool.kind) + " worker " + std::to_string(replica_index));
  // The fault injector, when this replica carries one. Payloads receive the
  // *inner* accelerator so typed downcasts still work.
  auto* faulty = dynamic_cast<core::FaultyAccelerator*>(&replica);
  core::Accelerator& target = faulty ? faulty->inner() : replica;
  for (;;) {
    BoundedJobQueue* source = &pool.queue;
    std::optional<QueuedJob> popped;
    if (config_.work_stealing) {
      // Poll the home queue briefly, then go looking for an overloaded
      // victim pool; an idle system just cycles the poll.
      popped = pool.queue.pop_for(config_.steal_poll);
      if (!popped) {
        if (pool.queue.closed()) break;
        popped = steal_from_other_pool(pool, source);
        if (!popped) continue;
        steals_.fetch_add(1, std::memory_order_relaxed);
        telemetry::count("sched.steal");
        TELEM_TRACE_INSTANT("sched.steal");
      }
    } else {
      popped = pool.queue.pop();
      if (!popped) break;
    }
    execute(pool, *source, replica, target, faulty, state,
            std::move(*popped));
  }
}

std::optional<QueuedJob> Scheduler::steal_from_other_pool(
    const Pool& thief, BoundedJobQueue*& source) {
  // try_lock, not lock: shutdown() joins workers while holding pools_mutex_,
  // so a blocking acquire here could deadlock the join.
  std::unique_lock lock(pools_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return std::nullopt;
  Pool* victim = nullptr;
  std::size_t deepest = 0;
  for (const auto& [kind, pool] : pools_) {
    if (pool.get() == &thief) continue;
    const std::size_t depth = pool->queue.size();
    if (depth > deepest) {
      deepest = depth;
      victim = pool.get();
    }
  }
  if (!victim) return std::nullopt;
  // The pool map never shrinks before shutdown, so the victim outlives the
  // steal; release the map lock before touching its queue lock.
  lock.unlock();
  auto stolen = victim->queue.try_steal();
  if (stolen) source = &victim->queue;
  return stolen;
}

void Scheduler::execute(Pool& pool, BoundedJobQueue& source,
                        core::Accelerator& replica, core::Accelerator& target,
                        core::FaultyAccelerator* faulty, Worker& state,
                        QueuedJob item) {
    const auto dequeued = Clock::now();
    const core::Real wait = seconds_between(item.enqueued_at, dequeued);
    telemetry::record("sched.wait_seconds", wait);
    telemetry::gauge(pool.depth_gauge,
                     static_cast<core::Real>(pool.queue.size()));

    // One slice per job, named after the job, covering everything that
    // happens to it on this worker (execution or the cancel/deadline
    // verdict). The flow step hooks the arrow from the submit slice here.
    telemetry::TraceScope job_scope(
        telemetry::trace_enabled()
            ? telemetry::TraceRecorder::instance().intern(item.name)
            : nullptr,
        "sched", item.seq);
    TELEM_TRACE_FLOW_STEP("job", item.seq);

    core::JobResult result;
    Verdict verdict = Verdict::kCompleted;
    if (item.opts.cancel && item.opts.cancel->cancelled()) {
      result.disposition = core::JobDisposition::kCancelled;
      result.summary = "sched: job '" + item.name +
                       "' cancelled before execution";
      result.attempts = item.attempts_done;
      result.fault_log = std::move(item.fault_log);
      telemetry::count("sched.cancelled");
      TELEM_TRACE_INSTANT("sched.cancelled");
    } else if (item.opts.deadline && dequeued >= *item.opts.deadline) {
      result.disposition = core::JobDisposition::kDeadlineMissed;
      result.summary = "sched: job '" + item.name +
                       "' missed its deadline after waiting " +
                       std::to_string(wait) + " s";
      result.attempts = item.attempts_done;
      result.fault_log = std::move(item.fault_log);
      telemetry::count("sched.deadline_missed");
      TELEM_TRACE_INSTANT("sched.deadline_expired");
    } else if (item.preemptible) {
      verdict = run_slice(pool, source, replica, target, item, result);
    } else {
      verdict = run_attempts(pool, replica, target, faulty, state, item,
                             result);
    }
    if (verdict != Verdict::kFailedOver && verdict != Verdict::kYielded)
      TELEM_TRACE_FLOW_END("job", item.seq);
    if (verdict == Verdict::kCompleted) {
      telemetry::record("sched.latency_seconds",
                        seconds_between(item.enqueued_at, Clock::now()));
      fulfill(item, std::move(result));
    }
    // kThrew already fulfilled the promise (exception) inside run_slice /
    // run_attempts; kFailedOver and kYielded re-queued the job elsewhere.
    source.task_done();
}

Scheduler::Verdict Scheduler::run_slice(Pool& pool, BoundedJobQueue& source,
                                        core::Accelerator& replica,
                                        core::Accelerator& target,
                                        QueuedJob& item,
                                        core::JobResult& out) {
  // Preemptible jobs bypass the retry/fault/breaker machinery on purpose:
  // their unit of resilience is the checkpoint carried inside the payload,
  // and the chaos suite exercises crash-resume rather than in-line retries.
  if (item.resumed) {
    resumes_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("sched.resume");
    TELEM_TRACE_INSTANT("sched.resume");
  }
  // The probe a cooperative payload polls at its checkpoint boundaries:
  // "is anything outranking me queued where I came from?"
  const int priority = item.opts.priority;
  const YieldProbe probe([&source, priority] {
    return source.has_higher_priority_queued(priority);
  });

  const auto start = Clock::now();
  std::optional<core::JobResult> res;
  try {
    TELEM_SPAN("sched." + core::to_string(pool.kind));
    res = item.preemptible(target, probe);
  } catch (...) {
    telemetry::count("sched.payload_exceptions");
    if (telemetry::Telemetry::enabled()) {
      auto& metrics = telemetry::Telemetry::instance().metrics();
      metrics.add("sched.jobs");
      metrics.add(pool.jobs_counter);
    }
    fulfill_exception(item, std::current_exception());
    return Verdict::kThrew;
  }
  const core::Real service = seconds_between(start, Clock::now());
  replica.record_completion(service);
  slices_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Telemetry::enabled()) {
    auto& metrics = telemetry::Telemetry::instance().metrics();
    metrics.add("sched.slices");
    metrics.add(pool.busy_counter, service);
    metrics.record("sched.service_seconds", service);
  }

  if (!res) {
    // Yielded at a checkpoint: the remainder re-enters the queue with its
    // original seq — the front of its priority class — and the worker turns
    // to the higher-priority work that triggered the preemption.
    preempts_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("sched.preempt");
    TELEM_TRACE_INSTANT("sched.preempt");
    TELEM_TRACE_FLOW_STEP("job", item.seq);
    item.resumed = true;
    item.enqueued_at = Clock::now();
    if (source.push_resumed(item) != BoundedJobQueue::PushStatus::kAccepted) {
      // Shutdown closed the queue mid-slice; the remainder will never run.
      complete_unrun(std::move(item), "flushed at shutdown mid-slice",
                     "sched.flushed", core::JobDisposition::kFlushed);
    } else {
      telemetry::gauge(pool.depth_gauge,
                       static_cast<core::Real>(source.size()));
    }
    return Verdict::kYielded;
  }

  out = std::move(*res);
  out.attempts = 1;
  if (telemetry::Telemetry::enabled()) {
    auto& metrics = telemetry::Telemetry::instance().metrics();
    metrics.add("sched.jobs");
    metrics.add(pool.jobs_counter);
    if (!out.ok) metrics.add("sched.jobs_failed");
    for (const auto& [key, value] : out.metrics) metrics.add(key, value);
  }
  return Verdict::kCompleted;
}

Scheduler::Verdict Scheduler::run_attempts(Pool& pool,
                                           core::Accelerator& replica,
                                           core::Accelerator& target,
                                           core::FaultyAccelerator* faulty,
                                           Worker& state, QueuedJob& item,
                                           core::JobResult& out) {
  const RetryPolicy& retry = item.opts.retry;
  std::size_t max_attempts = retry.max_attempts == 0 ? 1 : retry.max_attempts;
  // A job failed over with its budget already spent still deserves the one
  // attempt the hop promised it.
  if (item.failed_over && item.attempts_done >= max_attempts)
    max_attempts = item.attempts_done + 1;

  std::uint64_t attempts = item.attempts_done;
  std::vector<std::string> fault_log = std::move(item.fault_log);
  core::Real total_service = 0.0;
  Clock::duration backoff_spent{0};
  // The most recent ok=false result the payload itself produced. When the
  // job gives up, this is returned verbatim (annotated with the attempt
  // bookkeeping) so a single-attempt job behaves exactly as it did before
  // the resilience layer existed.
  core::JobResult last_result;
  bool have_last = false;

  const auto fail_with = [&](std::string why) {
    if (have_last) {
      out = std::move(last_result);
    } else {
      out.ok = false;
      out.summary = "sched: job '" + item.name + "' " + std::move(why);
    }
    out.attempts = attempts;
    out.wall_seconds = total_service;
    out.fault_log = std::move(fault_log);
    if (telemetry::Telemetry::enabled()) {
      auto& metrics = telemetry::Telemetry::instance().metrics();
      metrics.add("sched.jobs");
      metrics.add(pool.jobs_counter);
      metrics.add("sched.jobs_failed");
      for (const auto& [key, value] : out.metrics) metrics.add(key, value);
    }
  };

  for (;;) {
    // Health gate: an open breaker refuses the attempt on this replica.
    if (!state.breaker.allow()) {
      if (failover_eligible(retry, item, pool)) {
        fault_log.push_back("breaker open on " + core::to_string(pool.kind) +
                            " replica; failing over");
        return failover(std::move(item), attempts, std::move(fault_log));
      }
      ++attempts;
      fault_log.push_back(attempt_prefix(attempts) +
                          "circuit breaker open, execution refused");
    } else {
      ++attempts;
      telemetry::count("sched.attempts");
      bool failed = false;
      bool threw = false;
      std::exception_ptr thrown;
      core::FaultOutcome fault;
      if (faulty) fault = faulty->on_attempt(item.seq, attempts);
      if (fault.kind == core::FaultKind::kTransient ||
          fault.kind == core::FaultKind::kPermanent) {
        // The device "failed" before doing any work: the payload never runs.
        failed = true;
        fault_log.push_back(attempt_prefix(attempts) + fault.description);
        telemetry::count("sched.faults_injected");
        TELEM_TRACE_INSTANT("sched.fault_injected");
      } else {
        if (fault.kind == core::FaultKind::kLatencySpike) {
          fault_log.push_back(attempt_prefix(attempts) + fault.description);
          telemetry::count("sched.faults_injected");
          TELEM_TRACE_INSTANT("sched.fault_injected");
          std::this_thread::sleep_for(
              std::chrono::duration<core::Real>(fault.latency_seconds));
        }
        const auto start = Clock::now();
        core::JobResult attempt_result;
        try {
          TELEM_SPAN("sched." + core::to_string(pool.kind));
          attempt_result = item.payload(target);
        } catch (...) {
          threw = true;
          thrown = std::current_exception();
          telemetry::count("sched.payload_exceptions");
        }
        const core::Real service = seconds_between(start, Clock::now());
        total_service += service;
        replica.record_completion(service);
        if (telemetry::Telemetry::enabled()) {
          auto& metrics = telemetry::Telemetry::instance().metrics();
          metrics.add(pool.busy_counter, service);
          metrics.record("sched.service_seconds", service);
        }
        if (threw) {
          failed = true;
          fault_log.push_back(attempt_prefix(attempts) + "payload threw");
        } else if (fault.kind == core::FaultKind::kCorruption) {
          failed = true;
          fault_log.push_back(attempt_prefix(attempts) + fault.description);
          telemetry::count("sched.faults_injected");
          TELEM_TRACE_INSTANT("sched.fault_injected");
        } else if (!attempt_result.ok) {
          failed = true;
          fault_log.push_back(attempt_prefix(attempts) + "payload failed: " +
                              attempt_result.summary);
          last_result = std::move(attempt_result);
          have_last = true;
        } else {
          // Success.
          state.breaker.record_success();
          out = std::move(attempt_result);
          out.attempts = attempts;
          out.wall_seconds = total_service;
          out.degraded = attempts > 1 || item.failed_over;
          out.fault_log = std::move(fault_log);
          if (telemetry::Telemetry::enabled()) {
            auto& metrics = telemetry::Telemetry::instance().metrics();
            metrics.add("sched.jobs");
            metrics.add(pool.jobs_counter);
            if (out.degraded) metrics.add("sched.degraded");
            for (const auto& [key, value] : out.metrics)
              metrics.add(key, value);
          }
          return Verdict::kCompleted;
        }
      }
      if (failed && state.breaker.record_failure()) {
        telemetry::count("sched.breaker_open");
        TELEM_TRACE_INSTANT("sched.breaker_open");
      }
      if (threw && attempts >= max_attempts &&
          !failover_eligible(retry, item, pool)) {
        // Final attempt threw: propagate the exception, as a single-attempt
        // job always did. It still counts as an executed job.
        if (telemetry::Telemetry::enabled()) {
          auto& metrics = telemetry::Telemetry::instance().metrics();
          metrics.add("sched.jobs");
          metrics.add(pool.jobs_counter);
        }
        fulfill_exception(item, std::move(thrown));
        return Verdict::kThrew;
      }
    }

    if (attempts >= max_attempts) {
      if (failover_eligible(retry, item, pool)) {
        fault_log.push_back("attempts exhausted on " +
                            core::to_string(pool.kind) +
                            "; failing over to classical-cpu");
        return failover(std::move(item), attempts, std::move(fault_log));
      }
      fail_with("failed after " + std::to_string(attempts) + " attempt(s)");
      return Verdict::kCompleted;
    }

    // Backoff before the next attempt, honoring deadline and retry budget.
    const auto delay = backoff_delay(retry, attempts, item.seq);
    if (backoff_spent + delay > retry.retry_budget) {
      fault_log.push_back("retry budget exhausted after " +
                          std::to_string(attempts) + " attempt(s)");
      fail_with("failed after " + std::to_string(attempts) +
                " attempt(s); retry budget exhausted");
      return Verdict::kCompleted;
    }
    if (item.opts.deadline && Clock::now() + delay >= *item.opts.deadline) {
      telemetry::count("sched.deadline_missed");
      TELEM_TRACE_INSTANT("sched.deadline_expired");
      fault_log.push_back("backoff would cross the deadline; giving up after " +
                          std::to_string(attempts) + " attempt(s)");
      fail_with("failed after " + std::to_string(attempts) +
                " attempt(s); backoff would cross the deadline");
      return Verdict::kCompleted;
    }
    telemetry::count("sched.retries");
    TELEM_TRACE_INSTANT("sched.retry");
    std::this_thread::sleep_for(delay);
    backoff_spent += delay;
    if (item.opts.cancel && item.opts.cancel->cancelled()) {
      out.disposition = core::JobDisposition::kCancelled;
      out.attempts = attempts;
      out.fault_log = std::move(fault_log);
      out.wall_seconds = total_service;
      out.summary = "sched: job '" + item.name +
                    "' cancelled between retry attempts";
      telemetry::count("sched.cancelled");
      TELEM_TRACE_INSTANT("sched.cancelled");
      return Verdict::kCompleted;
    }
  }
}

bool Scheduler::failover_eligible(const RetryPolicy& retry,
                                  const QueuedJob& item,
                                  const Pool& pool) const {
  return retry.cpu_fallback && !item.failed_over &&
         pool.kind != core::AcceleratorKind::kClassicalCpu &&
         has_pool(core::AcceleratorKind::kClassicalCpu);
}

Scheduler::Verdict Scheduler::failover(QueuedJob&& item,
                                       std::uint64_t attempts,
                                       std::vector<std::string>&& fault_log) {
  Pool* cpu = find_pool(core::AcceleratorKind::kClassicalCpu);
  item.kind = core::AcceleratorKind::kClassicalCpu;
  item.failed_over = true;
  item.attempts_done = attempts;
  item.fault_log = std::move(fault_log);
  item.enqueued_at = Clock::now();
  telemetry::count("sched.failover");
  TELEM_TRACE_INSTANT("sched.failover");
  // The re-submit hop in the job's flow chain: submit -> dequeue ->
  // failover -> dequeue (cpu) -> complete.
  TELEM_TRACE_FLOW_STEP("job", item.seq);
  std::optional<QueuedJob> shed;
  const auto status = cpu->queue.push(item, &shed);
  if (shed)
    complete_unrun(std::move(*shed), "shed by backpressure (queue full)",
                   "sched.shed", core::JobDisposition::kShed);
  switch (status) {
    case BoundedJobQueue::PushStatus::kAccepted:
      telemetry::gauge(cpu->depth_gauge,
                       static_cast<core::Real>(cpu->queue.size()));
      break;
    case BoundedJobQueue::PushStatus::kRejected:
      complete_unrun(std::move(item), "rejected by backpressure (queue full)",
                     "sched.rejected", core::JobDisposition::kRejected);
      break;
    case BoundedJobQueue::PushStatus::kClosed:
      complete_unrun(std::move(item), "not accepted: scheduler shut down",
                     "sched.flushed", core::JobDisposition::kFlushed);
      break;
  }
  return Verdict::kFailedOver;
}

Clock::duration Scheduler::backoff_delay(const RetryPolicy& retry,
                                         std::size_t attempt,
                                         std::uint64_t seq) const {
  core::Real seconds =
      std::chrono::duration<core::Real>(retry.initial_backoff).count() *
      std::pow(retry.backoff_multiplier, static_cast<core::Real>(attempt - 1));
  seconds = std::min(
      seconds, std::chrono::duration<core::Real>(retry.max_backoff).count());
  if (retry.jitter > 0.0) {
    // Counter-based, like the fault verdicts: the jitter of retry k of job
    // seq is a pure function of (jitter_seed, seq, k).
    core::Rng rng = core::Rng::stream(config_.jitter_seed,
                                      (seq << 7) | (attempt & 0x7Full));
    seconds *= 1.0 + retry.jitter * (2.0 * rng.uniform() - 1.0);
  }
  seconds = std::max(seconds, 0.0);
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<core::Real>(seconds));
}

void Scheduler::complete_unrun(QueuedJob&& item, const std::string& why,
                               const char* metric,
                               core::JobDisposition disposition) {
  telemetry::count(metric);
  TELEM_TRACE_INSTANT(metric);  // metric names are literals: safe to record
  core::JobResult result;
  result.ok = false;
  result.disposition = disposition;
  result.summary = "sched: job '" + item.name + "' " + why;
  result.attempts = item.attempts_done;
  result.fault_log = std::move(item.fault_log);
  fulfill(item, std::move(result));
}

void Scheduler::track_accept() {
  std::lock_guard lock(drain_mutex_);
  ++outstanding_;
}

void Scheduler::track_complete() {
  std::lock_guard lock(drain_mutex_);
  if (--outstanding_ == 0) drain_cv_.notify_all();
}

void Scheduler::drain() {
  // Counted at promise completion (track_accept/track_complete), so this is
  // exact even while jobs hop between pools on failover — a queue-emptiness
  // scan could observe "all idle" mid-hop.
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void Scheduler::shutdown() {
  std::call_once(shutdown_once_, [this] {
    accepting_.store(false, std::memory_order_release);
    std::lock_guard lock(pools_mutex_);
    for (auto& [kind, pool] : pools_) pool->queue.close();
    for (auto& [kind, pool] : pools_)
      for (auto& thread : pool->threads)
        if (thread.joinable()) thread.join();
    // Workers are gone; whatever stayed queued is completed, not executed.
    // flush() hands the leftovers back in queue (priority, then FIFO) order,
    // so the ok=false completions are deterministic.
    for (auto& [kind, pool] : pools_) {
      for (auto& item : pool->queue.flush())
        complete_unrun(std::move(item), "flushed at shutdown before execution",
                       "sched.flushed", core::JobDisposition::kFlushed);
      telemetry::gauge(pool->depth_gauge, 0.0);
    }
  });
}

bool Scheduler::has_pool(core::AcceleratorKind kind) const {
  std::lock_guard lock(pools_mutex_);
  return pools_.contains(kind);
}

std::size_t Scheduler::queue_depth(core::AcceleratorKind kind) const {
  return find_pool(kind)->queue.size();
}

PoolStats Scheduler::stats(core::AcceleratorKind kind) const {
  return snapshot_pool(*find_pool(kind));
}

PoolStats Scheduler::snapshot_pool(const Pool& pool) {
  PoolStats s;
  s.workers = pool.replicas.size();
  s.queue_depth = pool.queue.size();
  s.queue_capacity = pool.queue.capacity();
  s.in_flight = pool.queue.in_flight();
  for (const auto& replica : pool.replicas) {
    s.jobs_completed += replica->jobs_completed();
    s.busy_seconds += replica->busy_seconds();
  }
  s.replicas.reserve(pool.workers.size());
  for (std::size_t i = 0; i < pool.workers.size(); ++i) {
    ReplicaHealth h = pool.workers[i]->breaker.snapshot();
    h.replica = i;
    if (h.state != BreakerState::kClosed) ++s.breakers_open;
    s.replicas.push_back(h);
  }
  return s;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  s.accepting = accepting();
  s.submitted = next_seq_.load(std::memory_order_relaxed);
  s.slices = slices_.load(std::memory_order_relaxed);
  s.preempts = preempts_.load(std::memory_order_relaxed);
  s.resumes = resumes_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  s.memo_riders = memo_riders_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(drain_mutex_);
    s.outstanding = outstanding_;
  }
  std::lock_guard lock(pools_mutex_);
  for (const auto& [kind, pool] : pools_) s.pools.emplace(kind, snapshot_pool(*pool));
  return s;
}

std::vector<ReplicaHealth> Scheduler::health(
    core::AcceleratorKind kind) const {
  const Pool* pool = find_pool(kind);
  std::vector<ReplicaHealth> out;
  out.reserve(pool->workers.size());
  for (std::size_t i = 0; i < pool->workers.size(); ++i) {
    ReplicaHealth h = pool->workers[i]->breaker.snapshot();
    h.replica = i;
    out.push_back(h);
  }
  return out;
}

std::string Scheduler::describe() const {
  std::ostringstream os;
  std::lock_guard lock(pools_mutex_);
  os << "Scheduler with " << pools_.size() << " worker pool(s), queues of "
     << config_.queue_capacity << " (" << to_string(config_.backpressure)
     << " backpressure):\n";
  for (const auto& [kind, pool] : pools_) {
    std::size_t jobs = 0;
    core::Real busy = 0.0;
    for (const auto& replica : pool->replicas) {
      jobs += replica->jobs_completed();
      busy += replica->busy_seconds();
    }
    os << "  [" << core::to_string(kind) << "] " << pool->replicas.size()
       << " x " << pool->replicas.front()->name() << " — " << jobs
       << " job(s), " << busy << " s busy, " << pool->queue.size()
       << " queued\n";
  }
  return os.str();
}

}  // namespace rebooting::sched
