#include "scheduler/scheduler.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.h"

namespace rebooting::sched {

namespace {

core::Real seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<core::Real>(b - a).count();
}

}  // namespace

Scheduler::Pool::Pool(core::AcceleratorKind k, std::size_t capacity,
                      BackpressurePolicy policy)
    : kind(k),
      queue(capacity, policy),
      depth_gauge("sched.queue_depth." + core::to_string(k)),
      jobs_counter("sched.jobs." + core::to_string(k)),
      busy_counter("sched.busy_seconds." + core::to_string(k)) {}

Scheduler::Scheduler(SchedulerConfig config) : config_(config) {}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::add_pool(core::AcceleratorKind kind, std::size_t workers,
                         const core::AcceleratorFactory& factory) {
  if (workers == 0)
    throw std::invalid_argument("sched: pool needs at least one worker");
  if (!factory) throw std::invalid_argument("sched: null accelerator factory");

  auto pool = std::make_unique<Pool>(kind, config_.queue_capacity,
                                     config_.backpressure);
  pool->replicas.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    auto replica = factory();
    if (!replica)
      throw std::invalid_argument("sched: factory returned a null accelerator");
    if (replica->kind() != kind)
      throw std::invalid_argument(
          "sched: factory built a '" + core::to_string(replica->kind()) +
          "' accelerator for the '" + core::to_string(kind) + "' pool");
    pool->replicas.push_back(std::move(replica));
  }

  // The map insert and the thread starts stay under one lock so shutdown()
  // can never observe a pool with a half-built thread vector.
  std::lock_guard lock(pools_mutex_);
  if (!accepting())
    throw std::runtime_error("sched: add_pool after shutdown");
  auto [it, inserted] = pools_.emplace(kind, std::move(pool));
  if (!inserted)
    throw std::invalid_argument(
        "sched: pool for kind '" + core::to_string(kind) +
        "' already exists (" + std::to_string(it->second->replicas.size()) +
        " worker(s)); size a pool via the `workers` argument instead of "
        "adding it twice");
  Pool& p = *it->second;
  for (std::size_t i = 0; i < workers; ++i)
    p.threads.emplace_back(&Scheduler::worker_loop, this, std::ref(p),
                           std::ref(*p.replicas[i]), i);
}

Scheduler::Pool* Scheduler::find_pool(core::AcceleratorKind kind) const {
  std::lock_guard lock(pools_mutex_);
  const auto it = pools_.find(kind);
  if (it == pools_.end())
    throw std::out_of_range("sched: no worker pool for kind '" +
                            core::to_string(kind) + "'");
  return it->second.get();
}

std::future<core::JobResult> Scheduler::submit(core::Job job,
                                               JobOptions opts) {
  if (!job.payload)
    throw std::invalid_argument("sched: job '" + job.name +
                                "' has no payload");
  DevicePayload payload = [p = std::move(job.payload)](core::Accelerator&) {
    return p();
  };
  return submit(std::move(job.name), job.kind, std::move(payload),
                std::move(opts));
}

std::future<core::JobResult> Scheduler::submit(std::string name,
                                               core::AcceleratorKind kind,
                                               DevicePayload payload,
                                               JobOptions opts) {
  if (!payload)
    throw std::invalid_argument("sched: job '" + name + "' has no payload");
  if (!accepting())
    throw std::runtime_error("sched: submit('" + name + "') after shutdown");
  Pool* pool = find_pool(kind);

  QueuedJob item;
  item.name = std::move(name);
  item.kind = kind;
  item.payload = std::move(payload);
  item.opts = std::move(opts);
  item.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  item.enqueued_at = Clock::now();
  auto future = item.promise.get_future();

  // The submit slice brackets the (possibly blocking) push, and the flow
  // arrow it contains starts the per-job submit -> dequeue -> complete chain.
  const std::uint64_t seq = item.seq;
  telemetry::TraceScope submit_scope(
      telemetry::trace_enabled() ? "sched.submit" : nullptr, "sched", seq);

  // push() may block (kBlock policy) — never under pools_mutex_.
  std::optional<QueuedJob> shed;
  const auto status = pool->queue.push(item, &shed);
  if (shed)
    complete_unrun(std::move(*shed), "shed by backpressure (queue full)",
                   "sched.shed");
  switch (status) {
    case BoundedJobQueue::PushStatus::kAccepted:
      TELEM_TRACE_FLOW_BEGIN("job", seq);
      telemetry::gauge(pool->depth_gauge,
                       static_cast<core::Real>(pool->queue.size()));
      break;
    case BoundedJobQueue::PushStatus::kRejected:
      complete_unrun(std::move(item), "rejected by backpressure (queue full)",
                     "sched.rejected");
      break;
    case BoundedJobQueue::PushStatus::kClosed:
      complete_unrun(std::move(item), "not accepted: scheduler shut down",
                     "sched.flushed");
      break;
  }
  return future;
}

std::vector<std::future<core::JobResult>> Scheduler::submit_batch(
    std::vector<core::Job> jobs, JobOptions opts) {
  std::vector<std::future<core::JobResult>> futures;
  futures.reserve(jobs.size());
  for (auto& job : jobs) futures.push_back(submit(std::move(job), opts));
  return futures;
}

void Scheduler::worker_loop(Pool& pool, core::Accelerator& replica,
                            std::size_t replica_index) {
  // Tags every slice this worker ever emits with its kind + replica: the
  // exported timeline shows one named track per replica per pool.
  telemetry::TraceRecorder::instance().set_thread_name(
      core::to_string(pool.kind) + " worker " + std::to_string(replica_index));
  while (auto popped = pool.queue.pop()) {
    QueuedJob item = std::move(*popped);
    const auto dequeued = Clock::now();
    const core::Real wait = seconds_between(item.enqueued_at, dequeued);
    telemetry::record("sched.wait_seconds", wait);
    telemetry::gauge(pool.depth_gauge,
                     static_cast<core::Real>(pool.queue.size()));

    // One slice per job, named after the job, covering everything that
    // happens to it on this worker (execution or the cancel/deadline
    // verdict). The flow step hooks the arrow from the submit slice here.
    telemetry::TraceScope job_scope(
        telemetry::trace_enabled()
            ? telemetry::TraceRecorder::instance().intern(item.name)
            : nullptr,
        "sched", item.seq);
    TELEM_TRACE_FLOW_STEP("job", item.seq);

    core::JobResult result;
    bool threw = false;
    if (item.opts.cancel && item.opts.cancel->cancelled()) {
      result.summary = "sched: job '" + item.name +
                       "' cancelled before execution";
      telemetry::count("sched.cancelled");
      TELEM_TRACE_INSTANT("sched.cancelled");
    } else if (item.opts.deadline && dequeued >= *item.opts.deadline) {
      result.summary = "sched: job '" + item.name +
                       "' missed its deadline after waiting " +
                       std::to_string(wait) + " s";
      telemetry::count("sched.deadline_missed");
      TELEM_TRACE_INSTANT("sched.deadline_expired");
    } else {
      const auto start = Clock::now();
      try {
        TELEM_SPAN("sched." + core::to_string(pool.kind));
        result = item.payload(replica);
      } catch (...) {
        threw = true;
        item.promise.set_exception(std::current_exception());
        telemetry::count("sched.payload_exceptions");
      }
      const core::Real service = seconds_between(start, Clock::now());
      result.wall_seconds = service;
      replica.record_completion(service);
      if (telemetry::Telemetry::enabled()) {
        auto& metrics = telemetry::Telemetry::instance().metrics();
        metrics.add("sched.jobs");
        metrics.add(pool.jobs_counter);
        metrics.add(pool.busy_counter, service);
        metrics.record("sched.service_seconds", service);
        if (!threw && !result.ok) metrics.add("sched.jobs_failed");
        if (!threw)
          for (const auto& [key, value] : result.metrics)
            metrics.add(key, value);
      }
    }
    TELEM_TRACE_FLOW_END("job", item.seq);
    if (!threw) {
      telemetry::record("sched.latency_seconds",
                        seconds_between(item.enqueued_at, Clock::now()));
      item.promise.set_value(std::move(result));
    }
    pool.queue.task_done();
  }
}

void Scheduler::complete_unrun(QueuedJob&& item, const std::string& why,
                               const char* metric) {
  telemetry::count(metric);
  TELEM_TRACE_INSTANT(metric);  // metric names are literals: safe to record
  core::JobResult result;
  result.ok = false;
  result.summary = "sched: job '" + item.name + "' " + why;
  item.promise.set_value(std::move(result));
}

void Scheduler::drain() {
  std::vector<Pool*> pools;
  {
    std::lock_guard lock(pools_mutex_);
    pools.reserve(pools_.size());
    for (auto& [kind, pool] : pools_) pools.push_back(pool.get());
  }
  for (Pool* pool : pools) pool->queue.wait_idle();
}

void Scheduler::shutdown() {
  std::call_once(shutdown_once_, [this] {
    accepting_.store(false, std::memory_order_release);
    std::lock_guard lock(pools_mutex_);
    for (auto& [kind, pool] : pools_) pool->queue.close();
    for (auto& [kind, pool] : pools_)
      for (auto& thread : pool->threads)
        if (thread.joinable()) thread.join();
    // Workers are gone; whatever stayed queued is completed, not executed.
    // flush() hands the leftovers back in queue (priority, then FIFO) order,
    // so the ok=false completions are deterministic.
    for (auto& [kind, pool] : pools_) {
      for (auto& item : pool->queue.flush())
        complete_unrun(std::move(item), "flushed at shutdown before execution",
                       "sched.flushed");
      telemetry::gauge(pool->depth_gauge, 0.0);
    }
  });
}

bool Scheduler::has_pool(core::AcceleratorKind kind) const {
  std::lock_guard lock(pools_mutex_);
  return pools_.contains(kind);
}

std::size_t Scheduler::queue_depth(core::AcceleratorKind kind) const {
  return find_pool(kind)->queue.size();
}

PoolStats Scheduler::stats(core::AcceleratorKind kind) const {
  const Pool* pool = find_pool(kind);
  PoolStats s;
  s.workers = pool->replicas.size();
  s.queue_depth = pool->queue.size();
  for (const auto& replica : pool->replicas) {
    s.jobs_completed += replica->jobs_completed();
    s.busy_seconds += replica->busy_seconds();
  }
  return s;
}

std::string Scheduler::describe() const {
  std::ostringstream os;
  std::lock_guard lock(pools_mutex_);
  os << "Scheduler with " << pools_.size() << " worker pool(s), queues of "
     << config_.queue_capacity << " (" << to_string(config_.backpressure)
     << " backpressure):\n";
  for (const auto& [kind, pool] : pools_) {
    std::size_t jobs = 0;
    core::Real busy = 0.0;
    for (const auto& replica : pool->replicas) {
      jobs += replica->jobs_completed();
      busy += replica->busy_seconds();
    }
    os << "  [" << core::to_string(kind) << "] " << pool->replicas.size()
       << " x " << pool->replicas.front()->name() << " — " << jobs
       << " job(s), " << busy << " s busy, " << pool->queue.size()
       << " queued\n";
  }
  return os.str();
}

}  // namespace rebooting::sched
