#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

namespace rebooting::telemetry {

Real HistogramSnapshot::quantile(Real q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // q = 0 is the smallest observation by definition — returning the first
  // bucket's upper bound would overstate it by up to a full bucket width.
  if (q == 0.0) return min;
  // With every observation in one bucket the log2 resolution is gone, but
  // the observed range isn't: interpolate [min, max] directly, which is
  // exact whenever all recorded values are equal (min == max).
  if (buckets.size() == 1) return min + q * (max - min);
  const Real target = q * static_cast<Real>(count);
  Real cumulative = 0.0;
  for (const auto& [bound, n] : buckets) {
    cumulative += static_cast<Real>(n);
    if (cumulative >= target) return std::clamp(bound, min, max);
  }
  return max;
}

std::size_t Histogram::bucket_index(Real v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN
  const int e = static_cast<int>(std::ceil(std::log2(v)));
  const int clamped = std::clamp(e, kMinExp, kMaxExp);
  return static_cast<std::size_t>(clamped - kMinExp) + 1;
}

Real Histogram::bucket_bound(std::size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, kMinExp + static_cast<int>(i) - 1);
}

void Histogram::record(Real v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucket_index(v)];
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  for (std::size_t i = 0; i < kBuckets; ++i)
    if (buckets_[i] > 0) s.buckets.emplace_back(bucket_bound(i), buckets_[i]);
  return s;
}

void MetricsRegistry::add(const std::string& name, Real delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, Real value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::record(const std::string& name, Real value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  histograms_[name].record(value);
}

Real MetricsRegistry::counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

std::optional<Real> MetricsRegistry::gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second.snapshot();
}

std::map<std::string, Real> MetricsRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::map<std::string, Real> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::histograms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h.snapshot());
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace rebooting::telemetry
