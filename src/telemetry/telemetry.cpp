#include "telemetry/telemetry.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace rebooting::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Innermost open span of this thread; nullptr means "at the tree root".
thread_local SpanNode* t_current = nullptr;

/// Env-driven setup, run during static initialization of any binary linking
/// the telemetry object (every workbench binary does, through the
/// instrumented HostSystem/engines). The atexit hook is what makes
///   REBOOTING_TELEMETRY_JSON=out.json ./build/bench/fig6_fast_pipeline
/// write its JSON with no code in the binary itself, and
///   REBOOTING_TRACE=out.trace.json ./build/examples/quickstart
/// capture a Chrome trace-event timeline the same way.
struct EnvInit {
  EnvInit() {
    const char* json = std::getenv("REBOOTING_TELEMETRY_JSON");
    const char* on = std::getenv("REBOOTING_TELEMETRY");
    const char* trace = std::getenv("REBOOTING_TRACE");
    const bool json_set = json != nullptr && *json != '\0';
    const bool on_set =
        on != nullptr && *on != '\0' && std::strcmp(on, "0") != 0;
    const bool trace_set = trace != nullptr && *trace != '\0';
    if (trace_set) TraceRecorder::set_enabled(true);
    if (json_set || on_set || trace_set) {
      // Tracing implies telemetry: the counter tracks sample the registry's
      // gauges, and the per-job scheduler metrics annotate the timeline.
      Telemetry::set_enabled(true);
      std::atexit([] {
        TraceRecorder::instance().flush_env_sink();
        Telemetry::instance().flush_env_sinks();
      });
    }
  }
};
const EnvInit env_init;

}  // namespace

const SpanNode* SpanNode::find(std::string_view name) const {
  for (const auto& child : children_)
    if (child->name() == name) return child.get();
  return nullptr;
}

SpanNode* SpanNode::find_or_add(std::string_view name) {
  for (const auto& child : children_)
    if (child->name() == name) return child.get();
  children_.push_back(std::make_unique<SpanNode>(std::string(name)));
  return children_.back().get();
}

Telemetry& Telemetry::instance() {
  // Intentionally leaked: atexit flush hooks and spans in static destructors
  // must never observe a destroyed instance.
  static Telemetry* const inst = new Telemetry();
  return *inst;
}

SpanNode* Telemetry::begin_span(std::string_view name) {
  const std::lock_guard<std::mutex> lock(span_mutex_);
  SpanNode* parent = t_current != nullptr ? t_current : &root_;
  SpanNode* node = parent->find_or_add(name);
  t_current = node;
  return node;
}

void Telemetry::end_span(SpanNode* node, SpanNode* parent,
                         Real elapsed_seconds) {
  const std::lock_guard<std::mutex> lock(span_mutex_);
  SpanStats& s = node->stats_;
  if (s.count == 0) {
    s.min_seconds = s.max_seconds = elapsed_seconds;
  } else {
    s.min_seconds = std::min(s.min_seconds, elapsed_seconds);
    s.max_seconds = std::max(s.max_seconds, elapsed_seconds);
  }
  ++s.count;
  s.total_seconds += elapsed_seconds;
  t_current = parent;
}

void Telemetry::reset() {
  const std::lock_guard<std::mutex> lock(span_mutex_);
  root_.children_.clear();
  root_.stats_ = SpanStats{};
  t_current = nullptr;
  metrics_.reset();
}

SpanNode* Span::current() { return t_current; }

}  // namespace rebooting::telemetry
