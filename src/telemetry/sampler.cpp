#include "telemetry/sampler.h"

#include <chrono>
#include <utility>

namespace rebooting::telemetry {

Sampler::Sampler(const MetricsRegistry& registry, SamplerConfig config)
    : registry_(registry),
      config_(config),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.capacity == 0) config_.capacity = 1;
}

Sampler::~Sampler() { stop(); }

MetricsSample Sampler::tick() {
  MetricsSample sample;
  sample.t_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - epoch_)
                         .count();
  // Three registry locks, not one — each accessor snapshots consistently on
  // its own; a global cut across counter/gauge/histogram maps is not needed
  // for rate math (rates only ever compare counters with counters).
  sample.counters = registry_.counters();
  sample.gauges = registry_.gauges();
  sample.histograms = registry_.histograms();

  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(sample);
  while (ring_.size() > config_.capacity) ring_.pop_front();
  return sample;
}

void Sampler::start() {
  const std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void Sampler::stop() {
  const std::lock_guard<std::mutex> lock(thread_mutex_);
  {
    // The flag flips under wait_mutex_ so run() either sees it before
    // waiting or is already inside wait_for and receives the notify —
    // never a missed wakeup that stalls stop() for a whole period.
    const std::lock_guard<std::mutex> wait_lock(wait_mutex_);
    running_.store(false, std::memory_order_release);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  thread_ = std::thread();
}

void Sampler::run() {
  // Ticks immediately, so latest() is non-empty as soon as the thread gets
  // scheduled — not one period later.
  std::unique_lock<std::mutex> lock(wait_mutex_);
  while (running_.load(std::memory_order_acquire)) {
    lock.unlock();
    tick();
    lock.lock();
    stop_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.period_seconds),
        [this] { return !running_.load(std::memory_order_acquire); });
  }
}

std::optional<MetricsSample> Sampler::latest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

MetricsRates Sampler::rates() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < 2) return {};
  return rates_between(ring_[ring_.size() - 2], ring_.back());
}

MetricsRates Sampler::rates_between(const MetricsSample& older,
                                    const MetricsSample& newer) {
  MetricsRates rates;
  rates.dt_seconds = newer.t_seconds - older.t_seconds;
  if (!(rates.dt_seconds > 0.0)) return rates;
  for (const auto& [name, value] : newer.counters) {
    const auto it = older.counters.find(name);
    const Real before = it != older.counters.end() ? it->second : 0.0;
    rates.per_second[name] = (value - before) / rates.dt_seconds;
  }
  return rates;
}

std::size_t Sampler::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

}  // namespace rebooting::telemetry
