// Periodic registry sampling: the bridge between the process-local
// MetricsRegistry (metrics.h) and anything that wants to watch it over time —
// rebootd's `metrics`/`watch` wire verbs and the `rebootctl top` dashboard.
//
// A Sampler takes point-in-time snapshots of one registry (counters, gauges,
// histogram snapshots) into a small fixed-capacity time-series ring and
// computes counter *rates* between consecutive samples. Counters only ever
// accumulate, so a remote observer cannot tell "busy" from "idle" by reading
// one value; the deltas/rates are what turn the registry into an ops surface
// (req/s, steals/s, faults/s).
//
// Two driving modes, freely mixed:
//
//   tick()         take one sample now (what rebootd's watch pump and the
//                  `metrics` verb call; also what makes tests deterministic)
//   start()/stop() background thread ticking every config.period — for
//                  embedders without their own cadence
//
// Thread safety: tick()/latest()/rates()/samples() are mutex-guarded and may
// be called from any thread concurrently with the background thread. The
// cost of one tick is one registry snapshot (three map copies under the
// registry lock) — bounded by bench/stats_overhead.cpp at <= 5 ms on a
// populated registry, so a 100 ms watch cadence costs well under 5% of one
// core and never stalls the instrumented hot paths (they only contend for
// the registry mutex, as any metric update already does).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "telemetry/metrics.h"

namespace rebooting::telemetry {

struct SamplerConfig {
  /// Cadence of the background thread (start()); tick() ignores it.
  double period_seconds = 0.5;
  /// Samples kept; older ones fall off the ring.
  std::size_t capacity = 120;
};

/// One point-in-time copy of the registry, stamped with seconds since the
/// sampler was constructed (monotonic, so rates are always well-defined).
struct MetricsSample {
  double t_seconds = 0.0;
  std::map<std::string, Real> counters;
  std::map<std::string, Real> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Counter deltas between two samples, normalized per second. Counters absent
/// from the older sample are treated as starting at 0 (they were created
/// in-between); dt == 0 yields an empty rate set rather than infinities.
struct MetricsRates {
  double dt_seconds = 0.0;
  std::map<std::string, Real> per_second;
};

class Sampler {
 public:
  explicit Sampler(const MetricsRegistry& registry, SamplerConfig config = {});
  ~Sampler();  ///< stop()s the background thread if running

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Takes one snapshot now, appends it to the ring, and returns a copy.
  MetricsSample tick();

  /// Spawns the background thread (idempotent). It ticks immediately, then
  /// every config.period_seconds until stop().
  void start();
  /// Joins the background thread (idempotent; safe when never started).
  void stop();

  /// Most recent sample; nullopt before the first tick.
  std::optional<MetricsSample> latest() const;
  /// Rates between the two most recent samples; empty before two ticks.
  MetricsRates rates() const;
  /// Rates between two arbitrary samples (exposed for tests and for rate
  /// windows wider than one period).
  static MetricsRates rates_between(const MetricsSample& older,
                                    const MetricsSample& newer);

  std::size_t size() const;
  const SamplerConfig& config() const { return config_; }

 private:
  void run();

  const MetricsRegistry& registry_;
  SamplerConfig config_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::deque<MetricsSample> ring_;

  std::mutex thread_mutex_;  ///< guards thread_ start/stop handshakes
  std::mutex wait_mutex_;    ///< pairs with stop_cv_ (never held with
                             ///< thread_mutex_ by the background thread)
  std::condition_variable stop_cv_;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace rebooting::telemetry
