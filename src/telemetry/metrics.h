// Named metrics for the telemetry layer: monotonically accumulated counters,
// last-value gauges, and log2-bucketed histograms. One process-wide registry
// lives inside telemetry::Telemetry; engines normally go through the
// TELEM_COUNT / TELEM_GAUGE / TELEM_RECORD helpers in telemetry.h, which are
// no-ops while telemetry is disabled.
//
// Thread safety: every mutating and reading member takes the registry mutex,
// so future parallel engines can bang on one registry from worker threads.
// The contention unit is a whole registry update — fine for the coarse
// per-phase counters used here, not meant for per-amplitude increments.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace rebooting::telemetry {

using core::Real;

/// Immutable copy of one histogram's state, safe to inspect without holding
/// the registry lock.
struct HistogramSnapshot {
  std::size_t count = 0;
  Real sum = 0.0;
  Real min = 0.0;  ///< smallest recorded value (0 when count == 0)
  Real max = 0.0;  ///< largest recorded value (0 when count == 0)
  /// Non-empty buckets as (inclusive upper bound, count). Bucket boundaries
  /// are powers of two; values <= 0 land in the first bucket with bound 0.
  std::vector<std::pair<Real, std::size_t>> buckets;

  Real mean() const { return count ? sum / static_cast<Real>(count) : 0.0; }

  /// Bucket-resolution quantile estimate for q in [0, 1]: the upper bound of
  /// the first bucket whose cumulative count reaches q * count, clamped to
  /// the observed [min, max] so estimates never leave the data range.
  /// Edges are exact where the data allows: q = 0 returns `min`, and a
  /// single-bucket histogram interpolates [min, max] (exact when all
  /// recorded values are equal).
  Real quantile(Real q) const;
};

/// Fixed-size log2 histogram. Covers 2^-40 .. 2^24 (~1e-12 .. 1.7e7), which
/// spans everything recorded here: seconds-scale timings down to nanoseconds
/// and dimensionless clause energies up to clause counts. Values outside the
/// range clamp into the edge buckets.
class Histogram {
 public:
  void record(Real v);
  HistogramSnapshot snapshot() const;

  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 24;
  /// Bucket 0 holds v <= 0; bucket i >= 1 holds 2^(kMinExp+i-2) < v <= 2^(kMinExp+i-1).
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) + 2;

  /// Index of the bucket `v` falls into (exposed for tests).
  static std::size_t bucket_index(Real v);
  /// Inclusive upper bound of bucket `i`.
  static Real bucket_bound(std::size_t i);

 private:
  std::size_t count_ = 0;
  Real sum_ = 0.0;
  Real min_ = 0.0;
  Real max_ = 0.0;
  std::array<std::size_t, kBuckets> buckets_{};
};

/// The process-wide named-metric store of the tentpole: counters accumulate,
/// gauges overwrite, histograms bucket. Names are dotted paths such as
/// "oscillator.hysteresis_events" — the same convention as core::Metrics keys,
/// so HostSystem can merge job metrics straight in.
class MetricsRegistry {
 public:
  /// Adds `delta` to the named counter (creating it at 0).
  void add(const std::string& name, Real delta = 1.0);
  /// Sets the named gauge to `value`.
  void set(const std::string& name, Real value);
  /// Records `value` into the named histogram.
  void record(const std::string& name, Real value);

  /// Current counter value; 0 for a name never added to.
  Real counter(const std::string& name) const;
  /// Current gauge value, or nullopt if never set.
  std::optional<Real> gauge(const std::string& name) const;
  /// Snapshot of the named histogram; empty snapshot if never recorded.
  HistogramSnapshot histogram(const std::string& name) const;

  std::map<std::string, Real> counters() const;
  std::map<std::string, Real> gauges() const;
  std::map<std::string, HistogramSnapshot> histograms() const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Real> counters_;
  std::map<std::string, Real> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rebooting::telemetry
