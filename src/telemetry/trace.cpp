#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/json.h"
#include "telemetry/telemetry.h"

namespace rebooting::telemetry {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;  // floor: even tiny test rings hold a few events
  while (p < n) p <<= 1;
  return p;
}

/// Per-thread recorder state. The shared_ptr keeps the ring alive across a
/// concurrent reset() (the recorder drops its reference, the thread keeps
/// writing into a detached — and ignored — ring until it notices the epoch
/// bump and re-registers).
struct Tls {
  std::shared_ptr<TraceRing> ring;
  std::uint64_t epoch = ~std::uint64_t{0};
  std::string pending_name;  ///< applied when the ring is registered
};

thread_local Tls t_trace;

/// Chrome trace-event phase letter per event type.
char phase_of(TraceEventType type) {
  switch (type) {
    case TraceEventType::kBegin: return 'B';
    case TraceEventType::kEnd: return 'E';
    case TraceEventType::kInstant: return 'i';
    case TraceEventType::kCounter: return 'C';
    case TraceEventType::kFlowBegin: return 's';
    case TraceEventType::kFlowStep: return 't';
    case TraceEventType::kFlowEnd: return 'f';
  }
  return 'i';
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity_pow2, std::size_t tid,
                     std::string name)
    : slots_(capacity_pow2),
      mask_(capacity_pow2 - 1),
      tid_(tid),
      thread_name_(std::move(name)) {}

TraceRecorder& TraceRecorder::instance() {
  // Intentionally leaked, like Telemetry: the atexit export and events fired
  // from static destructors must never observe a destroyed recorder.
  static TraceRecorder* const inst = new TraceRecorder();
  return *inst;
}

TraceRecorder::TraceRecorder()
    : epoch_ns_(steady_now_ns()),
      epoch_unix_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count()),
      ring_capacity_(kDefaultRingCapacity),
      epoch_(0) {
  if (const char* env = std::getenv("REBOOTING_TRACE_BUFFER");
      env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) ring_capacity_.store(round_up_pow2(static_cast<std::size_t>(v)),
                                    std::memory_order_relaxed);
  }
}

TraceRing* TraceRecorder::ring_for_this_thread() {
  Tls& tls = t_trace;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls.ring && tls.epoch == epoch) return tls.ring.get();

  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::string name = std::move(tls.pending_name);
  tls.pending_name.clear();
  if (name.empty()) name = "thread " + std::to_string(rings_.size());
  tls.ring = std::make_shared<TraceRing>(
      ring_capacity_.load(std::memory_order_relaxed), rings_.size(),
      std::move(name));
  tls.epoch = epoch;
  rings_.push_back(tls.ring);
  return tls.ring.get();
}

void TraceRecorder::emit(TraceEventType type, const char* name,
                         const char* cat, std::uint64_t id, double value) {
  TraceRing* ring = ring_for_this_thread();
  TraceEvent ev;
  ev.ts_ns = steady_now_ns() - epoch_ns_;
  ev.name = name;
  ev.cat = cat;
  ev.id = id;
  ev.value = value;
  ev.type = type;
  ring->push(ev);
}

const char* TraceRecorder::intern(std::string_view name) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = interned_.find(name);
  if (it == interned_.end()) it = interned_.emplace(name).first;
  // std::set node storage is stable across inserts, so c_str() pointers
  // survive until reset().
  return it->c_str();
}

void TraceRecorder::set_thread_name(std::string name) {
  Tls& tls = t_trace;
  if (tls.ring && tls.epoch == epoch_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    tls.ring->thread_name_ = std::move(name);
    return;
  }
  tls.pending_name = std::move(name);
  // While tracing, register immediately so a named-but-idle worker still
  // shows up as an (empty) track in the export.
  if (trace_enabled()) ring_for_this_thread();
}

void TraceRecorder::set_ring_capacity(std::size_t events) {
  ring_capacity_.store(round_up_pow2(events), std::memory_order_relaxed);
}

std::size_t TraceRecorder::ring_capacity() const {
  return ring_capacity_.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::dropped_events() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) dropped += ring->dropped();
  return dropped;
}

std::vector<ThreadTimeline> TraceRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<ThreadTimeline> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) {
    ThreadTimeline tl;
    tl.tid = ring->tid();
    tl.thread_name = ring->thread_name_;
    tl.written = ring->written();  // acquire: publishes the slots below
    tl.dropped = ring->dropped();
    const std::uint64_t kept =
        std::min<std::uint64_t>(tl.written, ring->capacity());
    tl.events.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t k = tl.written - kept; k < tl.written; ++k)
      tl.events.push_back(
          ring->slots_[static_cast<std::size_t>(k) & ring->mask_]);
    out.push_back(std::move(tl));
  }
  return out;
}

std::string TraceRecorder::to_json() const {
  const std::vector<ThreadTimeline> timelines = snapshot();

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"rebooting-workbench\"}}";

  for (const ThreadTimeline& tl : timelines)
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tl.tid << ",\"args\":{\"name\":" << core::json_quote(tl.thread_name)
       << "}}";

  std::uint64_t dropped = 0;
  for (const ThreadTimeline& tl : timelines) {
    dropped += tl.dropped;
    // Overwrite-oldest can clip the front of a wrapped ring mid-slice,
    // leaving end events whose begins were overwritten. Skip those orphans
    // so viewers see a clean (if truncated) timeline; the loss is already
    // accounted in dropped_events.
    std::size_t open_depth = 0;
    for (const TraceEvent& ev : tl.events) {
      if (ev.type == TraceEventType::kBegin) ++open_depth;
      if (ev.type == TraceEventType::kEnd) {
        if (open_depth == 0) continue;  // orphan from truncation
        --open_depth;
      }
      os << ",{\"name\":"
         << core::json_quote(ev.name != nullptr ? ev.name : "?")
         << ",\"cat\":"
         << core::json_quote(ev.cat != nullptr ? ev.cat : "trace")
         << ",\"ph\":\"" << phase_of(ev.type) << "\",\"pid\":1,\"tid\":"
         << tl.tid << ",\"ts\":"
         << core::json_number(static_cast<core::Real>(ev.ts_ns) / 1000.0);
      switch (ev.type) {
        case TraceEventType::kInstant:
          os << ",\"s\":\"t\"";  // thread-scoped instant
          break;
        case TraceEventType::kCounter:
          os << ",\"args\":{\"value\":" << core::json_number(ev.value) << '}';
          break;
        case TraceEventType::kFlowBegin:
        case TraceEventType::kFlowStep:
          os << ",\"id\":" << core::json_quote(std::to_string(ev.id));
          break;
        case TraceEventType::kFlowEnd:
          // bp:e binds the arrow head to the enclosing slice, not the next.
          os << ",\"id\":" << core::json_quote(std::to_string(ev.id))
             << ",\"bp\":\"e\"";
          break;
        case TraceEventType::kBegin:
        case TraceEventType::kEnd:
          if (ev.id != kNoTraceId)
            os << ",\"args\":{\"id\":"
               << core::json_number(static_cast<std::int64_t>(ev.id)) << '}';
          break;
      }
      os << '}';
    }
  }

  // epoch_unix_ns is the wall-clock instant of ts 0, as a decimal string —
  // a ns-precision Unix stamp exceeds the double mantissa, the same reason
  // checkpoint JSON carries u64s as strings.
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << core::json_number(static_cast<std::int64_t>(dropped))
     << ",\"ring_capacity\":"
     << core::json_number(static_cast<std::int64_t>(ring_capacity()))
     << ",\"epoch_unix_ns\":"
     << core::json_quote(std::to_string(epoch_unix_ns_)) << "}}";

  // Truncation is never silent: surface the loss next to the other counters.
  if (dropped > 0 && Telemetry::enabled())
    Telemetry::instance().metrics().add("trace.dropped_events",
                                        static_cast<core::Real>(dropped));
  return os.str();
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

void TraceRecorder::flush_env_sink() const {
  const char* path = std::getenv("REBOOTING_TRACE");
  if (path == nullptr || *path == '\0') return;
  if (!write_json(path)) {
    std::fprintf(stderr, "trace: failed to write %s\n", path);
    return;
  }
  std::uint64_t events = 0;
  const auto timelines = snapshot();
  for (const auto& tl : timelines) events += tl.events.size();
  std::fprintf(stderr,
               "trace: wrote %llu event(s) from %zu thread(s) to %s"
               " (%llu dropped)\n",
               static_cast<unsigned long long>(events), timelines.size(), path,
               static_cast<unsigned long long>(dropped_events()));
}

void TraceRecorder::reset() {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  rings_.clear();
  interned_.clear();
}

void trace_counter_named(const std::string& name, double value) {
  if (!trace_enabled()) return;
  auto& recorder = TraceRecorder::instance();
  recorder.emit(TraceEventType::kCounter, recorder.intern(name), nullptr,
                kNoTraceId, value);
}

}  // namespace rebooting::telemetry
