// Hierarchical tracing and process-wide telemetry for the Fig. 1 host and
// its engines.
//
// The model: instrumented code opens RAII Spans (TELEM_SPAN("quantum.compile"))
// that nest by call structure into a tree; identical paths aggregate into one
// node carrying count / total / min / max wall time. Alongside the span tree
// lives a MetricsRegistry of named counters, gauges, and histograms
// (metrics.h). Both render as aligned console tables (report()) and as JSON
// (to_json() / write_json()).
//
// Cost discipline: telemetry is OFF by default. Every entry point first reads
// one relaxed atomic bool — a disabled TELEM_SPAN is a load + branch, no
// clock read, no allocation (benchmarked in bench/micro_kernels.cpp). Enable
// programmatically with Telemetry::set_enabled(true), or via environment:
//
//   REBOOTING_TELEMETRY=1            enable; print the report to stderr at exit
//   REBOOTING_TELEMETRY_JSON=out.json enable; write the JSON export at exit
//
// Thread safety: span begin/end and registry updates are mutex-guarded, and
// the active-span cursor is thread-local, so parallel engines each build
// their own branch under the shared tree. reset() and set_enabled() must not
// race with open spans.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace rebooting::telemetry {

namespace detail {
/// The global on/off switch, read on every instrumentation hit. Out-of-line
/// storage lives in telemetry.cpp.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Aggregated wall-time statistics of one span path.
struct SpanStats {
  std::size_t count = 0;
  Real total_seconds = 0.0;
  Real min_seconds = 0.0;
  Real max_seconds = 0.0;
};

/// One node of the aggregated span tree. Children are ordered by first entry,
/// which keeps the rendered report in execution order.
class SpanNode {
 public:
  explicit SpanNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const SpanStats& stats() const { return stats_; }
  const std::vector<std::unique_ptr<SpanNode>>& children() const {
    return children_;
  }

  /// Child with the given name, or nullptr.
  const SpanNode* find(std::string_view name) const;

 private:
  friend class Telemetry;
  SpanNode* find_or_add(std::string_view name);

  std::string name_;
  SpanStats stats_;
  std::vector<std::unique_ptr<SpanNode>> children_;
};

/// Process-wide telemetry state: the span tree, the metrics registry, and the
/// sink (report/JSON rendering). A Meyers-style never-destroyed singleton so
/// atexit flushing cannot race static destruction.
class Telemetry {
 public:
  /// The process-wide instance (created on first use, never destroyed).
  static Telemetry& instance();

  static bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
  }

  MetricsRegistry& metrics() { return metrics_; }

  /// Root of the aggregated span tree. The root itself carries no timing;
  /// its children are the top-level spans. Take care to not mutate telemetry
  /// concurrently while walking the tree.
  const SpanNode& root() const { return root_; }

  /// Used by Span: descends the current thread's cursor into (creating if
  /// needed) the named child and returns it.
  SpanNode* begin_span(std::string_view name);
  /// Used by Span: folds `elapsed_seconds` into `node` and restores the
  /// cursor to `parent`.
  void end_span(SpanNode* node, SpanNode* parent, Real elapsed_seconds);

  /// Drops all spans and metrics. Must not be called with spans open (the
  /// RAII guards of any live TELEM_SPAN would point into the dropped tree).
  void reset();

  // --- sink (implemented in sink.cpp) ---------------------------------------
  /// Aligned console rendering of the span tree and registry (core::Table).
  std::string report() const;
  /// The whole telemetry state as a JSON document.
  std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;
  /// Honors REBOOTING_TELEMETRY_JSON / REBOOTING_TELEMETRY at process exit.
  void flush_env_sinks() const;

 private:
  Telemetry() : root_("root") {}

  mutable std::mutex span_mutex_;
  SpanNode root_;
  MetricsRegistry metrics_;
};

/// RAII tracing guard. Construction (when telemetry is enabled) descends into
/// the named child of the innermost open span on this thread; destruction
/// records the elapsed wall time. When disabled both ends are no-ops.
class Span {
 public:
  explicit Span(std::string_view name) {
    if (!Telemetry::enabled()) return;
    auto& telem = Telemetry::instance();
    parent_ = current();
    node_ = telem.begin_span(name);
    start_ = std::chrono::steady_clock::now();
  }

  ~Span() {
    if (!node_) return;
    const auto end = std::chrono::steady_clock::now();
    Telemetry::instance().end_span(
        node_, parent_, std::chrono::duration<Real>(end - start_).count());
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The innermost open span node on this thread (nullptr = tree root).
  static SpanNode* current();

 private:
  SpanNode* node_ = nullptr;
  SpanNode* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Counter / gauge / histogram helpers that vanish to a load + branch while
/// telemetry is disabled.
inline void count(const std::string& name, Real delta = 1.0) {
  if (Telemetry::enabled()) Telemetry::instance().metrics().add(name, delta);
}
inline void gauge(const std::string& name, Real value) {
  if (Telemetry::enabled()) Telemetry::instance().metrics().set(name, value);
  // Gauges double as trace counter tracks (queue depth, ensemble progress):
  // every set becomes one sample on the gauge's timeline when tracing is on.
  if (trace_enabled()) trace_counter_named(name, value);
}
inline void record(const std::string& name, Real value) {
  if (Telemetry::enabled()) Telemetry::instance().metrics().record(name, value);
}

}  // namespace rebooting::telemetry

#define REBOOTING_TELEM_CONCAT_(a, b) a##b
#define REBOOTING_TELEM_CONCAT(a, b) REBOOTING_TELEM_CONCAT_(a, b)

/// Opens a span for the rest of the enclosing scope.
#define TELEM_SPAN(name)                                      \
  ::rebooting::telemetry::Span REBOOTING_TELEM_CONCAT(        \
      rebooting_telem_span_, __LINE__)(name)

#define TELEM_COUNT(name, ...) \
  ::rebooting::telemetry::count(name __VA_OPT__(, ) __VA_ARGS__)
#define TELEM_GAUGE(name, value) ::rebooting::telemetry::gauge(name, value)
#define TELEM_RECORD(name, value) ::rebooting::telemetry::record(name, value)
