// Rendering backends of the telemetry layer: the aligned console report
// (core::Table) and the machine-readable JSON export, plus the process-exit
// flushing driven by REBOOTING_TELEMETRY / REBOOTING_TELEMETRY_JSON.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/json.h"
#include "core/table.h"
#include "telemetry/telemetry.h"

namespace rebooting::telemetry {

namespace {

void span_rows(const SpanNode& node, std::size_t depth, Real parent_total,
               core::Table& table) {
  const SpanStats& s = node.stats();
  const Real share =
      parent_total > 0.0 ? 100.0 * s.total_seconds / parent_total : 100.0;
  table.add_row({std::string(2 * depth, ' ') + node.name(),
                 static_cast<std::int64_t>(s.count), s.total_seconds * 1e3,
                 s.count ? s.total_seconds / static_cast<Real>(s.count) * 1e6
                         : 0.0,
                 s.min_seconds * 1e6, s.max_seconds * 1e6, share});
  for (const auto& child : node.children())
    span_rows(*child, depth + 1, s.total_seconds, table);
}

void span_json(const SpanNode& node, std::ostringstream& os) {
  const SpanStats& s = node.stats();
  os << '{' << core::json_quote("name") << ':' << core::json_quote(node.name())
     << ',' << core::json_quote("count") << ':'
     << core::json_number(static_cast<std::int64_t>(s.count)) << ','
     << core::json_quote("total_seconds") << ':'
     << core::json_number(s.total_seconds) << ','
     << core::json_quote("min_seconds") << ':'
     << core::json_number(s.min_seconds) << ','
     << core::json_quote("max_seconds") << ':'
     << core::json_number(s.max_seconds) << ','
     << core::json_quote("children") << ":[";
  bool first = true;
  for (const auto& child : node.children()) {
    if (!first) os << ',';
    first = false;
    span_json(*child, os);
  }
  os << "]}";
}

template <typename Map>
void scalar_map_json(const Map& values, std::ostringstream& os) {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) os << ',';
    first = false;
    os << core::json_quote(name) << ':' << core::json_number(value);
  }
  os << '}';
}

void histogram_json(const HistogramSnapshot& h, std::ostringstream& os) {
  os << '{' << core::json_quote("count") << ':'
     << core::json_number(static_cast<std::int64_t>(h.count)) << ','
     << core::json_quote("sum") << ':' << core::json_number(h.sum) << ','
     << core::json_quote("min") << ':' << core::json_number(h.min) << ','
     << core::json_quote("max") << ':' << core::json_number(h.max) << ','
     << core::json_quote("mean") << ':' << core::json_number(h.mean()) << ','
     << core::json_quote("p50") << ':' << core::json_number(h.quantile(0.5))
     << ',' << core::json_quote("p90") << ':'
     << core::json_number(h.quantile(0.9)) << ','
     << core::json_quote("p99") << ':'
     << core::json_number(h.quantile(0.99)) << ','
     << core::json_quote("buckets") << ":[";
  bool first = true;
  for (const auto& [bound, count] : h.buckets) {
    if (!first) os << ',';
    first = false;
    os << '[' << core::json_number(bound) << ','
       << core::json_number(static_cast<std::int64_t>(count)) << ']';
  }
  os << "]}";
}

}  // namespace

std::string Telemetry::report() const {
  std::ostringstream os;

  {
    const std::lock_guard<std::mutex> lock(span_mutex_);
    if (!root_.children().empty()) {
      core::Table spans({"span", "count", "total [ms]", "mean [us]",
                         "min [us]", "max [us]", "% parent"},
                        3);
      Real top_total = 0.0;
      for (const auto& child : root_.children())
        top_total += child->stats().total_seconds;
      for (const auto& child : root_.children())
        span_rows(*child, 0, top_total, spans);
      os << "Spans (wall time, nested by call structure):\n"
         << spans.to_string();
    }
  }

  const auto counters = metrics_.counters();
  if (!counters.empty()) {
    core::Table table({"counter", "value"}, 3);
    for (const auto& [name, value] : counters)
      table.add_row({name, value});
    os << "Counters:\n" << table.to_string();
  }

  const auto gauges = metrics_.gauges();
  if (!gauges.empty()) {
    core::Table table({"gauge", "value"}, 6);
    for (const auto& [name, value] : gauges) table.add_row({name, value});
    os << "Gauges:\n" << table.to_string();
  }

  const auto histograms = metrics_.histograms();
  if (!histograms.empty()) {
    core::Table table(
        {"histogram", "count", "mean", "p50", "p90", "p99", "min", "max"}, 4);
    for (const auto& [name, h] : histograms)
      table.add_row({name, static_cast<std::int64_t>(h.count), h.mean(),
                     h.quantile(0.5), h.quantile(0.9), h.quantile(0.99),
                     h.min, h.max});
    os << "Histograms:\n" << table.to_string();
  }

  if (os.str().empty()) os << "Telemetry: no spans or metrics recorded.\n";
  return os.str();
}

std::string Telemetry::to_json() const {
  std::ostringstream os;
  os << '{' << core::json_quote("enabled") << ':'
     << (enabled() ? "true" : "false") << ',' << core::json_quote("spans")
     << ':';
  {
    const std::lock_guard<std::mutex> lock(span_mutex_);
    span_json(root_, os);
  }
  os << ',' << core::json_quote("counters") << ':';
  scalar_map_json(metrics_.counters(), os);
  os << ',' << core::json_quote("gauges") << ':';
  scalar_map_json(metrics_.gauges(), os);
  os << ',' << core::json_quote("histograms") << ":{";
  bool first = true;
  for (const auto& [name, h] : metrics_.histograms()) {
    if (!first) os << ',';
    first = false;
    os << core::json_quote(name) << ':';
    histogram_json(h, os);
  }
  os << "}}";
  return os.str();
}

bool Telemetry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

void Telemetry::flush_env_sinks() const {
  const char* json = std::getenv("REBOOTING_TELEMETRY_JSON");
  if (json != nullptr && *json != '\0') {
    if (!write_json(json))
      std::fprintf(stderr, "telemetry: failed to write JSON to %s\n", json);
  }
  const char* on = std::getenv("REBOOTING_TELEMETRY");
  if (on != nullptr && *on != '\0' && std::string_view(on) != "0")
    std::fputs(report().c_str(), stderr);
}

}  // namespace rebooting::telemetry
