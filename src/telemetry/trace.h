// Per-event trace recorder: the timeline counterpart of the aggregated span
// tree in telemetry.h.
//
// TELEM_SPAN folds every execution of a path into one count/total/min/max
// node — it can say that `dmm.solve` took 40 ms total, but not where the
// queueing gaps, worker idle bubbles, or replica assignments were. This
// recorder keeps the individual events: every instrumented point appends one
// fixed-size TraceEvent to a lock-free ring buffer owned by the calling
// thread, and the exporter renders all buffers as Chrome trace-event JSON
// (the `{"traceEvents":[...]}` array format), loadable in ui.perfetto.dev or
// chrome://tracing.
//
// Event vocabulary (macro family at the bottom of this header):
//
//   TELEM_TRACE_SCOPE(name)            B/E slice pair for the enclosing scope
//   TELEM_TRACE_SCOPE_ID(name, id)     same, annotated with a numeric id
//                                      (replica index, trajectory index)
//   TELEM_TRACE_INSTANT(name)          zero-duration marker on this thread
//   TELEM_TRACE_COUNTER(name, value)   one sample of a numeric track
//   TELEM_TRACE_FLOW_BEGIN/STEP/END(name, id)
//                                      arrow chain across threads (e.g. the
//                                      scheduler's submit -> dequeue ->
//                                      complete per job id). Flow events bind
//                                      to the innermost open slice, so emit
//                                      them inside a TELEM_TRACE_SCOPE.
//
// Cost discipline (same as TELEM_SPAN, gated in bench/trace_overhead.cpp):
// every macro first reads one relaxed atomic bool — disabled tracing is a
// load + branch, < 2 ns. Enabled, an event is one steady_clock read plus one
// 48-byte store into the thread's ring: no locks, no allocation (< 100 ns).
// The ring is fixed-capacity and overwrites its oldest entries; overwritten
// events are counted, surfaced as `trace.dropped_events` in the metrics
// registry and as `otherData.dropped_events` in the export, so truncation is
// never silent.
//
// Names passed to the macros must have static storage duration (string
// literals); dynamic names (job names, gauge names) go through
// TraceRecorder::intern(), which returns a stable pointer.
//
// Activation mirrors telemetry: programmatic via TraceRecorder::set_enabled,
// or  REBOOTING_TRACE=out.trace.json  which enables telemetry + tracing and
// writes the export at process exit (env hook lives in telemetry.cpp).
//
// Thread safety: the hot path is single-writer per ring (the owning thread)
// and wait-free. snapshot()/to_json()/reset() require quiescence: no thread
// may be emitting while they run (disable tracing and join or drain workers
// first — the natural order at process exit and in tests).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace rebooting::telemetry {

namespace detail {
/// The tracing on/off switch, independent of the span/metrics switch so a
/// timeline can be captured without paying for aggregation (and vice versa).
/// Out-of-line storage lives in trace.cpp.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Maps 1:1 onto Chrome trace-event phases:
/// B/E (slice begin/end), i (instant), C (counter), s/t/f (flow).
enum class TraceEventType : std::uint8_t {
  kBegin,
  kEnd,
  kInstant,
  kCounter,
  kFlowBegin,
  kFlowStep,
  kFlowEnd,
};

/// "No id" sentinel for the TraceEvent::id field.
inline constexpr std::uint64_t kNoTraceId = ~std::uint64_t{0};

/// One fixed-size ring slot. `name`/`cat` must point at storage that outlives
/// the recorder (literals or interned strings).
struct TraceEvent {
  std::int64_t ts_ns = 0;  ///< steady-clock ns since the recorder's epoch
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t id = kNoTraceId;  ///< flow id or numeric annotation
  double value = 0.0;             ///< counter sample
  TraceEventType type = TraceEventType::kInstant;
};

/// One thread's ring. Single writer (the owning thread); the write cursor is
/// published with release stores so a quiescent-time reader sees complete
/// slots. Overwrite-oldest: push never blocks and never allocates.
class TraceRing {
 public:
  TraceRing(std::size_t capacity_pow2, std::size_t tid, std::string name);

  void push(const TraceEvent& ev) {
    const std::uint64_t w = written_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(w) & mask_] = ev;
    written_.store(w + 1, std::memory_order_release);
  }

  /// Total events ever pushed (monotone; may exceed capacity).
  std::uint64_t written() const {
    return written_.load(std::memory_order_acquire);
  }
  /// Events lost to overwrite-oldest so far.
  std::uint64_t dropped() const {
    const std::uint64_t w = written();
    return w > slots_.size() ? w - slots_.size() : 0;
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t tid() const { return tid_; }

 private:
  friend class TraceRecorder;

  std::vector<TraceEvent> slots_;
  std::size_t mask_;  ///< capacity - 1 (capacity is a power of two)
  std::atomic<std::uint64_t> written_{0};
  std::size_t tid_;
  std::string thread_name_;  ///< guarded by the recorder's registry mutex
};

/// Quiescent-time copy of one thread's surviving events, oldest first.
struct ThreadTimeline {
  std::size_t tid = 0;
  std::string thread_name;
  std::uint64_t written = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

/// Process-wide recorder: owns every thread's ring (rings are kept alive
/// until reset so the exporter can read buffers of exited threads), the
/// interning table, and the exporter. Meyers-style never-destroyed singleton,
/// like Telemetry.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  static bool enabled() { return trace_enabled(); }
  static void set_enabled(bool on) {
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring (registering the ring on
  /// first use). Callers must check trace_enabled() first — the macros do.
  void emit(TraceEventType type, const char* name, const char* cat = nullptr,
            std::uint64_t id = kNoTraceId, double value = 0.0);

  /// Copies `name` into the recorder-lifetime interning table and returns a
  /// stable pointer, suitable for TraceEvent::name/cat. Mutex-guarded slow
  /// path — use for low-rate dynamic names (job names, gauge names), not in
  /// per-step loops.
  const char* intern(std::string_view name);

  /// Names the calling thread in the export ("quantum worker 0"). While
  /// tracing is enabled this registers the thread's ring immediately, so
  /// named-but-idle threads still appear; while disabled the name is parked
  /// thread-locally and applied if the thread ever emits.
  void set_thread_name(std::string name);

  /// Capacity (events, rounded up to a power of two) of rings registered
  /// from now on; existing rings keep theirs. Seeded from
  /// REBOOTING_TRACE_BUFFER when set, else kDefaultRingCapacity.
  void set_ring_capacity(std::size_t events);
  std::size_t ring_capacity() const;

  /// Sum of dropped() over all registered rings.
  std::uint64_t dropped_events() const;

  /// Wall-clock (system_clock, Unix ns) instant corresponding to ts_ns == 0.
  /// Exported as otherData.epoch_unix_ns so scripts/trace_merge.py can align
  /// timelines captured by *different processes* (each process's steady
  /// clock has its own origin) onto one shared axis before stitching their
  /// flow arrows together.
  std::int64_t epoch_unix_ns() const { return epoch_unix_ns_; }

  /// Quiescent-time copy of every ring, in registration order.
  std::vector<ThreadTimeline> snapshot() const;

  /// The Chrome trace-event JSON document ({"traceEvents":[...]}). Folds
  /// dropped_events() into the metrics registry as `trace.dropped_events`.
  std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;
  /// Honors REBOOTING_TRACE at process exit (no-op when unset).
  void flush_env_sink() const;

  /// Drops all rings, interned names, and thread registrations. Requires
  /// quiescence, like snapshot(). Threads re-register on their next event.
  void reset();

  static constexpr std::size_t kDefaultRingCapacity = 16384;

 private:
  TraceRecorder();

  TraceRing* ring_for_this_thread();

  std::int64_t epoch_ns_;       ///< steady-clock origin of every ts_ns
  std::int64_t epoch_unix_ns_;  ///< wall-clock instant of that origin

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<TraceRing>> rings_;
  std::set<std::string, std::less<>> interned_;
  std::atomic<std::size_t> ring_capacity_;
  std::atomic<std::uint64_t> epoch_;  ///< bumped by reset(); invalidates TLS
};

/// RAII B/E slice pair. The macro form passes a literal; instrumentation with
/// runtime names passes an interned pointer (nullptr disables the scope).
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* cat = nullptr,
                      std::uint64_t id = kNoTraceId) {
    if (!trace_enabled() || name == nullptr) return;
    name_ = name;
    cat_ = cat;
    id_ = id;
    TraceRecorder::instance().emit(TraceEventType::kBegin, name, cat, id);
  }

  ~TraceScope() {
    if (name_ != nullptr)
      TraceRecorder::instance().emit(TraceEventType::kEnd, name_, cat_, id_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t id_ = kNoTraceId;
};

/// One sample of the counter track `name` (interned — callable with dynamic
/// names such as gauge keys).
void trace_counter_named(const std::string& name, double value);

}  // namespace rebooting::telemetry

#define REBOOTING_TRACE_CONCAT_(a, b) a##b
#define REBOOTING_TRACE_CONCAT(a, b) REBOOTING_TRACE_CONCAT_(a, b)

/// B/E slice for the rest of the enclosing scope.
#define TELEM_TRACE_SCOPE(name)                         \
  ::rebooting::telemetry::TraceScope REBOOTING_TRACE_CONCAT( \
      rebooting_trace_scope_, __LINE__)(name)

/// B/E slice annotated with a numeric id (args.id in the export).
#define TELEM_TRACE_SCOPE_ID(name, id)                  \
  ::rebooting::telemetry::TraceScope REBOOTING_TRACE_CONCAT( \
      rebooting_trace_scope_, __LINE__)(                \
      name, nullptr, static_cast<std::uint64_t>(id))

/// Zero-duration marker on the calling thread's track.
#define TELEM_TRACE_INSTANT(name)                                      \
  do {                                                                 \
    if (::rebooting::telemetry::trace_enabled())                       \
      ::rebooting::telemetry::TraceRecorder::instance().emit(          \
          ::rebooting::telemetry::TraceEventType::kInstant, name);     \
  } while (0)

/// One sample of the counter track `name`. The name must be a literal; use
/// trace_counter_named() for dynamic names.
#define TELEM_TRACE_COUNTER(name, value)                               \
  do {                                                                 \
    if (::rebooting::telemetry::trace_enabled())                       \
      ::rebooting::telemetry::TraceRecorder::instance().emit(          \
          ::rebooting::telemetry::TraceEventType::kCounter, name,      \
          nullptr, ::rebooting::telemetry::kNoTraceId,                 \
          static_cast<double>(value));                                 \
  } while (0)

#define REBOOTING_TRACE_FLOW_(phase, name, id)                         \
  do {                                                                 \
    if (::rebooting::telemetry::trace_enabled())                       \
      ::rebooting::telemetry::TraceRecorder::instance().emit(          \
          ::rebooting::telemetry::TraceEventType::phase, name, "flow", \
          static_cast<std::uint64_t>(id));                             \
  } while (0)

/// Flow arrow chain: BEGIN at the producer, STEP at each hand-off, END at the
/// consumer — all inside open TELEM_TRACE_SCOPEs, sharing (name, id).
#define TELEM_TRACE_FLOW_BEGIN(name, id) \
  REBOOTING_TRACE_FLOW_(kFlowBegin, name, id)
#define TELEM_TRACE_FLOW_STEP(name, id) \
  REBOOTING_TRACE_FLOW_(kFlowStep, name, id)
#define TELEM_TRACE_FLOW_END(name, id) \
  REBOOTING_TRACE_FLOW_(kFlowEnd, name, id)
