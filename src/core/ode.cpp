#include "core/ode.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rebooting::core {

namespace {

void check_dims(std::span<Real> y, std::span<Real> scratch,
                std::size_t multiple) {
  if (scratch.size() < multiple * y.size())
    throw std::invalid_argument("ode step: scratch too small");
}

}  // namespace

void euler_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
                std::span<Real> scratch) {
  check_dims(y, scratch, 1);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) y[i] += dt * k1[i];
}

void heun_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
               std::span<Real> scratch) {
  check_dims(y, scratch, 3);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  auto k2 = scratch.subspan(n, n);
  auto tmp = scratch.subspan(2 * n, n);
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k1[i];
  f(t + dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) y[i] += 0.5 * dt * (k1[i] + k2[i]);
}

void rk4_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
              std::span<Real> scratch) {
  check_dims(y, scratch, 5);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  auto k2 = scratch.subspan(n, n);
  auto k3 = scratch.subspan(2 * n, n);
  auto k4 = scratch.subspan(3 * n, n);
  auto tmp = scratch.subspan(4 * n, n);
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
  f(t + 0.5 * dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
  f(t + 0.5 * dt, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k3[i];
  f(t + dt, tmp, k4);
  for (std::size_t i = 0; i < n; ++i)
    y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

Real integrate_fixed(const OdeRhs& f, Scheme scheme, Real t0, Real t1, Real dt,
                     std::vector<Real>& y, const OdeObserver& observe) {
  if (!(dt > 0.0)) throw std::invalid_argument("integrate_fixed: dt must be > 0");
  std::vector<Real> scratch(5 * y.size());
  Real t = t0;
  while (t < t1) {
    const Real step = std::min(dt, t1 - t);
    switch (scheme) {
      case Scheme::kEuler:
        euler_step(f, t, step, y, scratch);
        break;
      case Scheme::kHeun:
        heun_step(f, t, step, y, scratch);
        break;
      case Scheme::kRk4:
        rk4_step(f, t, step, y, scratch);
        break;
    }
    t += step;
    if (observe && !observe(t, y)) return t;
  }
  return t;
}

AdaptiveResult integrate_adaptive(const OdeRhs& f, Real t0, Real t1,
                                  std::vector<Real>& y,
                                  const AdaptiveOptions& opts,
                                  const OdeObserver& observe) {
  // Classic RKF45 (Fehlberg) tableau.
  static constexpr Real a21 = 1.0 / 4.0;
  static constexpr Real a31 = 3.0 / 32.0, a32 = 9.0 / 32.0;
  static constexpr Real a41 = 1932.0 / 2197.0, a42 = -7200.0 / 2197.0,
                        a43 = 7296.0 / 2197.0;
  static constexpr Real a51 = 439.0 / 216.0, a52 = -8.0, a53 = 3680.0 / 513.0,
                        a54 = -845.0 / 4104.0;
  static constexpr Real a61 = -8.0 / 27.0, a62 = 2.0, a63 = -3544.0 / 2565.0,
                        a64 = 1859.0 / 4104.0, a65 = -11.0 / 40.0;
  static constexpr Real b41 = 25.0 / 216.0, b43 = 1408.0 / 2565.0,
                        b44 = 2197.0 / 4104.0, b45 = -1.0 / 5.0;
  static constexpr Real b51 = 16.0 / 135.0, b53 = 6656.0 / 12825.0,
                        b54 = 28561.0 / 56430.0, b55 = -9.0 / 50.0,
                        b56 = 2.0 / 55.0;
  static constexpr Real c2 = 1.0 / 4.0, c3 = 3.0 / 8.0, c4 = 12.0 / 13.0,
                        c6 = 1.0 / 2.0;

  const std::size_t n = y.size();
  std::vector<Real> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), tmp(n), y5(n);

  AdaptiveResult res;
  Real t = t0;
  Real dt = std::clamp(opts.initial_dt, opts.min_dt, opts.max_dt);

  while (t < t1) {
    if (res.accepted_steps >= opts.max_steps) {
      res.hit_step_limit = true;
      break;
    }
    dt = std::min(dt, t1 - t);

    f(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * a21 * k1[i];
    f(t + c2 * dt, tmp, k2);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a31 * k1[i] + a32 * k2[i]);
    f(t + c3 * dt, tmp, k3);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a41 * k1[i] + a42 * k2[i] + a43 * k3[i]);
    f(t + c4 * dt, tmp, k4);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] =
          y[i] + dt * (a51 * k1[i] + a52 * k2[i] + a53 * k3[i] + a54 * k4[i]);
    f(t + dt, tmp, k5);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a61 * k1[i] + a62 * k2[i] + a63 * k3[i] +
                            a64 * k4[i] + a65 * k5[i]);
    f(t + c6 * dt, tmp, k6);

    // 4th- and 5th-order solutions; the difference estimates the local error.
    Real err_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Real y4 =
          y[i] + dt * (b41 * k1[i] + b43 * k3[i] + b44 * k4[i] + b45 * k5[i]);
      y5[i] = y[i] + dt * (b51 * k1[i] + b53 * k3[i] + b54 * k4[i] +
                           b55 * k5[i] + b56 * k6[i]);
      const Real scale =
          opts.abs_tol + opts.rel_tol * std::max(std::abs(y[i]), std::abs(y5[i]));
      const Real e = (y5[i] - y4) / scale;
      err_norm += e * e;
    }
    err_norm = std::sqrt(err_norm / static_cast<Real>(n));

    if (err_norm <= 1.0 || dt <= opts.min_dt) {
      // Accept (forcibly when already at the minimum step).
      t += dt;
      y.assign(y5.begin(), y5.end());
      ++res.accepted_steps;
      if (observe && !observe(t, y)) {
        res.stopped_by_observer = true;
        break;
      }
    } else {
      ++res.rejected_steps;
    }

    const Real factor =
        (err_norm > 0.0)
            ? std::clamp(0.9 * std::pow(err_norm, -0.2), 0.2, 5.0)
            : 5.0;
    dt = std::clamp(dt * factor, opts.min_dt, opts.max_dt);
  }

  res.t_final = t;
  return res;
}

}  // namespace rebooting::core
