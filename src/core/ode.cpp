#include "core/ode.h"

namespace rebooting::core {

namespace {

/// One lazily grown arena per thread: the legacy entry points stay
/// allocation-free after their first call without threading a Workspace
/// through every signature. Reentrancy (an observer that integrates) is safe
/// because the drivers carve blocks under a Workspace::Scope.
Workspace& legacy_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace

void euler_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
                std::span<Real> scratch) {
  FunctionKernel k{f};
  euler_step(k, t, dt, y, scratch);
}

void heun_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
               std::span<Real> scratch) {
  FunctionKernel k{f};
  heun_step(k, t, dt, y, scratch);
}

void rk4_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
              std::span<Real> scratch) {
  FunctionKernel k{f};
  rk4_step(k, t, dt, y, scratch);
}

Real integrate_fixed(const OdeRhs& f, Scheme scheme, Real t0, Real t1, Real dt,
                     std::vector<Real>& y, const OdeObserver& observe) {
  FunctionKernel k{f};
  if (observe)
    return integrate_fixed(k, scheme, t0, t1, dt, std::span<Real>(y),
                           legacy_workspace(), observe);
  return integrate_fixed(k, scheme, t0, t1, dt, std::span<Real>(y),
                         legacy_workspace());
}

AdaptiveResult integrate_adaptive(const OdeRhs& f, Real t0, Real t1,
                                  std::vector<Real>& y,
                                  const AdaptiveOptions& opts,
                                  const OdeObserver& observe) {
  FunctionKernel k{f};
  if (observe)
    return integrate_adaptive(k, t0, t1, std::span<Real>(y), opts,
                              legacy_workspace(), observe);
  return integrate_adaptive(k, t0, t1, std::span<Real>(y), opts,
                            legacy_workspace());
}

}  // namespace rebooting::core
