// Initial-value ODE integrators for the physics engines.
//
// Both the VO2 oscillator network (Sec. III) and the digital memcomputing
// machine (Sec. IV, Eqs. 1-2) are systems of nonlinear ODEs. The oscillator
// waveforms need dense, fixed-step output for the XOR readout; the DMM wants
// an adaptive step to sprint through slow phases, so both flavours live here.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

/// Right-hand side: writes dy/dt(t, y) into dydt. Both spans have the system
/// dimension; implementations must not resize or alias them.
using OdeRhs =
    std::function<void(Real t, std::span<const Real> y, std::span<Real> dydt)>;

/// Called after every accepted step with (t, y). Return false to stop the
/// integration early (used for event-driven termination, e.g. "DMM reached a
/// satisfying assignment").
using OdeObserver = std::function<bool(Real t, std::span<const Real> y)>;

/// Fixed-step integration schemes.
enum class Scheme { kEuler, kHeun, kRk4 };

/// Stateless single steps (y is updated in place). `scratch` must provide at
/// least 4*y.size() reals of workspace; these are exposed for callers that
/// manage their own loops (the oscillator engine does, because it interleaves
/// hysteresis-event handling between steps).
void euler_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
                std::span<Real> scratch);
void heun_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
               std::span<Real> scratch);
void rk4_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
              std::span<Real> scratch);

/// Fixed-step driver: integrates from t0 to t1 in steps of dt (final step
/// shortened to land on t1). Observer is called after each step; returns the
/// final time reached (== t1 unless the observer stopped early).
Real integrate_fixed(const OdeRhs& f, Scheme scheme, Real t0, Real t1, Real dt,
                     std::vector<Real>& y, const OdeObserver& observe = {});

/// Adaptive Runge–Kutta–Fehlberg 4(5) controls.
struct AdaptiveOptions {
  Real abs_tol = 1e-8;
  Real rel_tol = 1e-6;
  Real initial_dt = 1e-3;
  Real min_dt = 1e-12;
  Real max_dt = 1.0;
  /// Step-count guard: integration aborts (returning the time reached) after
  /// this many accepted steps, so a stiff runaway cannot hang a benchmark.
  std::size_t max_steps = 50'000'000;
};

struct AdaptiveResult {
  Real t_final = 0.0;
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  bool stopped_by_observer = false;
  bool hit_step_limit = false;
};

/// Adaptive RKF45 driver with PI-free classic step control (factor clamped to
/// [0.2, 5]).
AdaptiveResult integrate_adaptive(const OdeRhs& f, Real t0, Real t1,
                                  std::vector<Real>& y,
                                  const AdaptiveOptions& opts,
                                  const OdeObserver& observe = {});

}  // namespace rebooting::core
