// Initial-value ODE integrators for the physics engines — std::function
// convenience layer.
//
// Both the VO2 oscillator network (Sec. III) and the digital memcomputing
// machine (Sec. IV, Eqs. 1-2) are systems of nonlinear ODEs. The oscillator
// waveforms need dense, fixed-step output for the XOR readout; the DMM wants
// an adaptive step to sprint through slow phases, so both flavours live here.
//
// This header is the *dynamic-dispatch* API: the RHS is a std::function, so
// it composes with lambdas and captures freely but pays an indirect call per
// evaluation. The integration hot path lives in core/dynamics.h as templated
// steppers over kernel types; everything here forwards there through the
// FunctionKernel adapter, so the two paths share one implementation (and the
// t0 + i*dt drift-free time tracking).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/dynamics.h"
#include "core/types.h"

namespace rebooting::core {

/// Right-hand side: writes dy/dt(t, y) into dydt. Both spans have the system
/// dimension; implementations must not resize or alias them.
using OdeRhs =
    std::function<void(Real t, std::span<const Real> y, std::span<Real> dydt)>;

/// Called after every accepted step with (t, y). Return false to stop the
/// integration early (used for event-driven termination, e.g. "DMM reached a
/// satisfying assignment").
using OdeObserver = std::function<bool(Real t, std::span<const Real> y)>;

/// Adapts a std::function RHS to the DynamicsKernel concept of dynamics.h.
struct FunctionKernel {
  const OdeRhs& f;
  void rhs(Real t, std::span<const Real> y, std::span<Real> dydt) const {
    f(t, y, dydt);
  }
};

/// Stateless single steps (y is updated in place). `scratch` must provide at
/// least 4*y.size() reals of workspace; these are exposed for callers that
/// manage their own loops (the oscillator engine does, because it interleaves
/// hysteresis-event handling between steps).
void euler_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
                std::span<Real> scratch);
void heun_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
               std::span<Real> scratch);
void rk4_step(const OdeRhs& f, Real t, Real dt, std::span<Real> y,
              std::span<Real> scratch);

/// Fixed-step driver: integrates from t0 to t1 in steps of dt (final step
/// shortened to land exactly on t1). Observer is called after each step;
/// returns the final time reached (== t1 unless the observer stopped early).
/// Scratch comes from a lazily grown thread-local workspace: repeated calls
/// allocate nothing after the first.
Real integrate_fixed(const OdeRhs& f, Scheme scheme, Real t0, Real t1, Real dt,
                     std::vector<Real>& y, const OdeObserver& observe = {});

/// Adaptive RKF45 driver with PI-free classic step control (factor clamped to
/// [0.2, 5]). Scratch handling as in integrate_fixed.
AdaptiveResult integrate_adaptive(const OdeRhs& f, Real t0, Real t1,
                                  std::vector<Real>& y,
                                  const AdaptiveOptions& opts,
                                  const OdeObserver& observe = {});

}  // namespace rebooting::core
