// The heterogeneous-accelerator runtime of Fig. 1 and the layered stack of
// Fig. 2.
//
// The paper's Sec. II thesis is that post-von-Neumann devices slot into a
// host system the way GPUs/FPGAs/TPUs do: the host dispatches jobs to an
// accelerator, and each accelerator is a full stack (application → algorithm
// → compiler → runtime → ISA → microarchitecture → device). This header
// defines the host-side abstractions; each engine (quantum, oscillator,
// memcomputing) registers a concrete Accelerator.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

/// Classes of execution resource in the Fig. 1 system picture.
enum class AcceleratorKind {
  kClassicalCpu,
  kQuantum,
  kOscillator,
  kMemcomputing,
};

std::string to_string(AcceleratorKind kind);
/// Inverse of to_string(AcceleratorKind); nullopt for an unknown name. Shared
/// by fault-plan parsing and the rebootd wire protocol.
std::optional<AcceleratorKind> kind_from_string(const std::string& name);

/// How a dispatch layer disposed of a job — the typed counterpart of the
/// ok/summary pair, so callers (the rebootd front door above all) can map an
/// outcome to a typed response instead of string-matching summaries.
/// kExecuted covers both success and a payload that ran and failed; every
/// other value means the payload never ran.
enum class JobDisposition : std::uint8_t {
  kExecuted,        ///< ran to a verdict (ok or failed after its attempts)
  kRejected,        ///< refused by kReject backpressure at submission
  kShed,            ///< evicted from the queue by kShedOldest backpressure
  kFlushed,         ///< still queued when the scheduler shut down
  kDeadlineMissed,  ///< deadline expired while queued or between retries
  kCancelled,       ///< CancelToken fired before (or between) attempts
};

std::string to_string(JobDisposition disposition);

/// Free-form numeric metrics reported by a job (instruction counts, per-layer
/// latencies, energies, solution quality, ...). Keys are dotted paths such as
/// "compile.gates" or "power.total_mw".
using Metrics = std::map<std::string, Real>;

struct JobResult {
  bool ok = false;
  std::string summary;  ///< one-line human-readable outcome
  Metrics metrics;
  Real wall_seconds = 0.0;  ///< host-measured end-to-end latency
  // --- resilience bookkeeping (filled by the sched::Scheduler execution
  // layer; a synchronous HostSystem::submit leaves the defaults) -----------
  JobDisposition disposition = JobDisposition::kExecuted;
  std::size_t attempts = 0;  ///< execution attempts consumed (0 = never ran)
  bool degraded = false;  ///< ok, but only via retries or failover
  /// One line per fault the job survived (or died of): injected faults,
  /// payload failures, breaker refusals, failover hops. Empty on a clean
  /// first-attempt success.
  std::vector<std::string> fault_log;
};

/// A unit of offloadable work. The payload closure runs on (and typically
/// captures) a specific accelerator's typed API; the host layer only sees the
/// uniform JobResult.
struct Job {
  std::string name;
  AcceleratorKind kind = AcceleratorKind::kClassicalCpu;
  std::function<JobResult()> payload;
};

/// One execution resource in the heterogeneous system. Concrete accelerators
/// (the quantum stack, the oscillator array, the DMM engine) subclass this and
/// additionally expose their own typed APIs; the base class is what the
/// HostSystem scheduler sees.
class Accelerator {
 public:
  virtual ~Accelerator() = default;

  virtual std::string name() const = 0;
  virtual AcceleratorKind kind() const = 0;

  /// The Fig. 2 stack layers of this accelerator, top (application interface)
  /// to bottom (device), for reporting.
  virtual std::vector<std::string> stack_layers() const = 0;

  /// Number of jobs this accelerator has completed via a dispatch layer.
  std::size_t jobs_completed() const {
    return jobs_completed_.load(std::memory_order_relaxed);
  }
  /// Total busy time accumulated across completed jobs [s].
  Real busy_seconds() const {
    return busy_seconds_.load(std::memory_order_relaxed);
  }

  /// Folds one completed job into the utilization counters. Called by the
  /// dispatch layers (HostSystem::submit, sched::Scheduler workers); safe to
  /// call from multiple threads concurrently.
  void record_completion(Real busy_seconds) {
    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    busy_seconds_.fetch_add(busy_seconds, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> jobs_completed_{0};
  std::atomic<Real> busy_seconds_{0.0};
};

/// Constructs a fresh accelerator instance. The sched::Scheduler worker pools
/// use this to replicate an accelerator N times per kind — lifting the
/// HostSystem one-per-kind restriction — with each replica owned by exactly
/// one worker thread. Each engine exposes a `static factory(...)` returning
/// one of these bound to its config.
using AcceleratorFactory = std::function<std::shared_ptr<Accelerator>()>;

/// The host CPU itself as a schedulable resource, so classical jobs (baseline
/// solvers, pre/post-processing) flow through the same dispatch paths as the
/// post-von-Neumann accelerators instead of bypassing the job log.
class CpuAccelerator final : public Accelerator {
 public:
  std::string name() const override { return "Classical CPU (host)"; }
  AcceleratorKind kind() const override {
    return AcceleratorKind::kClassicalCpu;
  }
  std::vector<std::string> stack_layers() const override {
    return {"Application (host code)",
            "Compiler / runtime (host toolchain)",
            "von Neumann CPU"};
  }

  static AcceleratorFactory factory();
};

/// Record of one dispatched job, kept in the host log.
struct JobRecord {
  std::string job_name;
  std::string accelerator_name;
  AcceleratorKind kind = AcceleratorKind::kClassicalCpu;
  JobResult result;
};

/// The host of Fig. 1: owns the accelerator registry, dispatches jobs to the
/// matching resource, measures wall time, and keeps a job log with metrics.
/// This is the synchronous, single-threaded dispatch path; the asynchronous
/// multi-worker path is sched::Scheduler (src/scheduler/), which replicates
/// accelerators via AcceleratorFactory and shares the same per-accelerator
/// utilization counters.
class HostSystem {
 public:
  /// Registers an accelerator. At most one accelerator per kind; a duplicate
  /// kind throws std::invalid_argument naming the kind and the accelerator
  /// already holding it. (Replication happens in sched::Scheduler pools, not
  /// here.)
  void register_accelerator(std::shared_ptr<Accelerator> accel);

  bool has(AcceleratorKind kind) const;

  /// The registered accelerator of the given kind; throws std::out_of_range
  /// if none.
  Accelerator& accelerator(AcceleratorKind kind);

  /// Runs the job on the accelerator of job.kind, measuring wall time, and
  /// appends a JobRecord. Throws std::out_of_range when no accelerator of
  /// that kind is registered; a payload returning ok=false is recorded, not
  /// thrown.
  JobResult submit(const Job& job);

  const std::vector<JobRecord>& log() const { return log_; }

  /// Aggregate metric across the log: sum of `key` over records that carry it.
  Real total_metric(const std::string& key) const;

  /// Multi-line report of registered accelerators, their stacks, and the
  /// utilization counters — the textual form of the Fig. 1 system picture.
  std::string describe() const;

 private:
  std::map<AcceleratorKind, std::shared_ptr<Accelerator>> accelerators_;
  std::vector<JobRecord> log_;
};

}  // namespace rebooting::core
