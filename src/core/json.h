// Minimal JSON helpers shared by the table exporter, the telemetry sink, and
// the trace exporter: writer-side quoting/number rendering plus a small
// reader (json_parse) so tests and tools can load the emitted documents back
// without an external dependency.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

/// Escapes `s` per RFC 8259 and wraps it in double quotes.
std::string json_quote(const std::string& s);

/// Renders a Real as a JSON number: round-trippable precision, and NaN/Inf
/// (not representable in JSON) rendered as null.
std::string json_number(Real v);

/// Renders a signed integer as a JSON number.
std::string json_number(std::int64_t v);

/// One parsed JSON value. Numbers are held as Real (the workbench emits
/// nothing that needs 64-bit integer exactness beyond 2^53); object members
/// keep document order in a vector of pairs (std::vector is the one
/// container guaranteed to support the incomplete element type this
/// recursion needs). Accessors throw std::runtime_error on type mismatch so
/// test failures point at the offending path instead of reading garbage.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool boolean() const;
  Real number() const;
  const std::string& string() const;
  const std::vector<JsonValue>& array() const;
  const Members& object() const;

  /// Object member access; throws std::out_of_range on a missing key.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(Real v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> a);
  static JsonValue make_object(Members o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  Real number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  Members object_;
};

/// Strict RFC 8259 parse of a complete document (one value plus surrounding
/// whitespace). Returns nullopt on any syntax error — including trailing
/// garbage — so "parses" is a meaningful assertion in tests.
std::optional<JsonValue> json_parse(std::string_view text);

/// Compact (no whitespace) serialization of a composed JsonValue — the
/// inverse of json_parse. Shares json_quote / json_number with the trace and
/// table exporters, so every JSON the workbench emits renders strings and
/// numbers identically. Round-trip guarantee: json_parse(json_dump(v))
/// reproduces v (numbers via max_digits10; non-finite numbers render as
/// null, the one lossy case, matching json_number).
std::string json_dump(const JsonValue& v);

}  // namespace rebooting::core
