// Minimal JSON emission helpers shared by the table exporter and the
// telemetry sink. This is writer-side only — the workbench never parses
// JSON, it just emits machine-readable reports for external tooling.
#pragma once

#include <string>

#include "core/types.h"

namespace rebooting::core {

/// Escapes `s` per RFC 8259 and wraps it in double quotes.
std::string json_quote(const std::string& s);

/// Renders a Real as a JSON number: round-trippable precision, and NaN/Inf
/// (not representable in JSON) rendered as null.
std::string json_number(Real v);

/// Renders a signed integer as a JSON number.
std::string json_number(std::int64_t v);

}  // namespace rebooting::core
