// Gate-level energy/power modelling for the CMOS baseline of Sec. III-B.
//
// The paper compares a VO2 coupled-oscillator corner-detection block
// (0.936 mW) against "the corresponding CMOS implementation at the 32 nm
// process node" (3 mW). We rebuild that CMOS number from first principles:
// count the gates in the comparison datapath, multiply by per-gate switching
// energy at the node (E = alpha * C * Vdd^2), add leakage. The model is a
// logical-effort-style estimate, which is also what the paper's own number
// had to be (no netlist is given).
#pragma once

#include <cstddef>
#include <string>

#include "core/types.h"

namespace rebooting::core {

/// Technology constants for one process node. The 32 nm preset is calibrated
/// against published ITRS-era numbers: ~1.0 fF effective switched capacitance
/// per NAND2-equivalent gate, Vdd 0.9 V, ~25 nW leakage per gate.
struct CmosTechnology {
  std::string node_name;
  Real vdd = 0.9;                      ///< supply voltage [V]
  Real gate_capacitance = 1.0e-15;     ///< switched C per NAND2-eq gate [F]
  Real wire_overhead = 0.6;            ///< extra switched C as fraction of gate C
  Real leakage_per_gate = 25.0e-9;     ///< static power per gate [W]
  Real fo4_delay = 15.0e-12;           ///< FO4 inverter delay [s]

  static CmosTechnology node_32nm();
  static CmosTechnology node_45nm();
  static CmosTechnology node_22nm();

  /// Energy of one output transition of one NAND2-equivalent gate [J],
  /// including the wire overhead: (1 + wire) * C * Vdd^2. (The full CV^2, not
  /// CV^2/2: charge + discharge over a switching cycle.)
  Real switching_energy() const;
};

/// Gate inventory of a combinational/sequential block, in NAND2-equivalent
/// units per entry (e.g. an XOR2 is ~3 NAND2-eq, a full adder ~6).
struct GateInventory {
  std::size_t inverters = 0;
  std::size_t nand2 = 0;
  std::size_t xor2 = 0;
  std::size_t full_adders = 0;
  std::size_t flipflops = 0;
  std::size_t mux2 = 0;

  /// Total NAND2-equivalent gate count using standard-cell equivalences
  /// (INV 0.5, NAND2 1, XOR2 3, FA 6, DFF 8, MUX2 3).
  Real nand2_equivalents() const;

  GateInventory& operator+=(const GateInventory& other);
  friend GateInventory operator+(GateInventory a, const GateInventory& b) {
    a += b;
    return a;
  }
  friend GateInventory operator*(std::size_t k, GateInventory g) {
    g.inverters *= k;
    g.nand2 *= k;
    g.xor2 *= k;
    g.full_adders *= k;
    g.flipflops *= k;
    g.mux2 *= k;
    return g;
  }
};

/// Power estimate for a digital block clocked at `frequency` with switching
/// activity `activity` (average fraction of gates toggling per cycle).
struct BlockPower {
  Real dynamic_watts = 0.0;
  Real leakage_watts = 0.0;
  Real total() const { return dynamic_watts + leakage_watts; }
};

BlockPower estimate_block_power(const CmosTechnology& tech,
                                const GateInventory& gates, Real frequency,
                                Real activity);

/// Energy consumed performing `ops` operations on a block whose per-cycle
/// energy is fixed: ops * cycles_per_op * per-cycle dynamic energy +
/// leakage * wall time.
Real block_energy_for_ops(const CmosTechnology& tech, const GateInventory& gates,
                          Real frequency, Real activity, Real ops,
                          Real cycles_per_op);

}  // namespace rebooting::core
