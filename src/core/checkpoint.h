// Serializable execution checkpoints: the unit of preemptible computation.
//
// A long trajectory (DMM solve, oscillator transient) is deterministic given
// its seed, so its entire future is a pure function of (state vector, time
// index, RNG state). A Checkpoint captures exactly that — plus a few
// engine-defined side accumulators — in a form that round-trips through
// json_dump/json_parse bit-exactly. That buys three things at once:
//
//  1. Slicing: an engine can integrate for a bounded SliceBudget, park the
//     trajectory in a Checkpoint, and resume later with bit-identical
//     results — the scheduler uses this to preempt low-priority jobs at
//     slice boundaries (DESIGN.md §12).
//  2. Durability: a checkpoint written to disk survives a worker killed
//     mid-slice (SIGKILL chaos scenario); resuming from the last JSON file
//     reproduces the uninterrupted run exactly.
//  3. Migration: because the checkpoint carries everything, the resuming
//     worker can be a different thread, pool, or process.
//
// Exactness rules: Real fields serialize through json_number (max_digits10,
// round-trippable); 64-bit integers serialize as decimal *strings* because
// JsonValue holds numbers as Real, which is only exact to 2^53 — RNG lanes
// and step counters use the full 64 bits; flag bytes serialize as one hex
// string.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/random.h"
#include "core/types.h"

namespace rebooting::core {

class JsonValue;

/// How much work one slice may do before yielding. Both limits zero means
/// "run to completion" (the non-preemptible fast path). Budgets bound *work
/// granularity*, not results: a trajectory advanced in many small slices is
/// bit-identical to one advanced in a single unlimited slice.
struct SliceBudget {
  /// Maximum integration steps this slice may take; 0 = unlimited. Adaptive
  /// drivers count attempted steps (accepted + rejected) so a rejecting
  /// stiff region cannot stretch a slice unboundedly.
  std::size_t max_steps = 0;
  /// Maximum wall-clock seconds for this slice; 0 = unlimited. Wall-driven
  /// yields move the *cut points* nondeterministically but never the values:
  /// resume is exact wherever the cut lands.
  Real max_seconds = 0.0;

  bool unlimited() const { return max_steps == 0 && max_seconds <= 0.0; }

  static SliceBudget steps(std::size_t n) { return SliceBudget{n, 0.0}; }
  static SliceBudget wall(Real seconds) { return SliceBudget{0, seconds}; }
};

/// One parked trajectory. The core layer defines only the envelope; each
/// engine documents its own packing of state/aux/counters/flags (see
/// DmmSolver and oscillator::Network). `tag` names the producer so a
/// checkpoint handed to the wrong engine is rejected instead of misread.
struct Checkpoint {
  std::string tag;                      ///< producer id, e.g. "dmm"
  std::uint64_t step = 0;               ///< time index (steps completed)
  Real t = 0.0;                         ///< simulated time reached
  std::vector<Real> state;              ///< continuous state vector y
  std::vector<Real> aux;                ///< engine scalars / trace samples
  std::vector<std::uint64_t> counters;  ///< engine exact integers
  std::vector<unsigned char> flags;     ///< engine bytes (signs, phases, ...)
  RngState rng;                         ///< full RNG stream position

  bool operator==(const Checkpoint&) const = default;

  /// Compact JSON object; json_parse(json_dump()) reproduces *this exactly.
  std::string json_dump() const;
  JsonValue to_json() const;

  /// Strict parse; nullopt on malformed documents (wrong types, bad hex,
  /// non-integral counters) so resume never runs from a torn file.
  static std::optional<Checkpoint> from_json(std::string_view text);
  static std::optional<Checkpoint> from_value(const JsonValue& v);
};

/// Exact decimal rendering/parsing for 64-bit integers carried through JSON
/// as strings (shared by Checkpoint and EnsembleCheckpoint).
std::string u64_to_string(std::uint64_t v);
std::optional<std::uint64_t> u64_from_string(std::string_view s);

/// Byte-vector <-> lowercase hex string (two chars per byte).
std::string bytes_to_hex(const std::vector<unsigned char>& bytes);
std::optional<std::vector<unsigned char>> bytes_from_hex(std::string_view hex);

}  // namespace rebooting::core
