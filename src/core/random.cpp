#include "core/random.h"

#include <cmath>
#include <stdexcept>

namespace rebooting::core {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Real Rng::uniform() {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<Real>((*this)() >> 11) * 0x1.0p-53;
}

Real Rng::uniform(Real lo, Real hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Lemire's multiply-then-reject method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

Real Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; reject u1 == 0 to avoid log(0).
  Real u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const Real u2 = uniform();
  const Real r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(kTwoPi * u2);
}

Real Rng::normal(Real mean, Real stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(Real p) { return uniform() < p; }

Rng Rng::split() { return Rng((*this)()); }

RngState Rng::save() const {
  RngState state;
  state.lanes = state_;
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

Rng Rng::restore(const RngState& state) {
  Rng rng;
  rng.state_ = state.lanes;
  // Guard the one invalid xoshiro state so a corrupted checkpoint cannot
  // produce an all-zero (constant) generator.
  if (rng.state_[0] == 0 && rng.state_[1] == 0 && rng.state_[2] == 0 &&
      rng.state_[3] == 0) {
    rng.state_[0] = 1;
  }
  rng.cached_normal_ = state.cached_normal;
  rng.has_cached_normal_ = state.has_cached_normal;
  return rng;
}

Rng Rng::stream(std::uint64_t base_seed, std::uint64_t stream_index) {
  // Mix seed and counter through separate splitmix64 chains before combining:
  // adjacent counters (0, 1, 2, ...) land in unrelated regions of the seed
  // space, so per-trajectory streams never share low-entropy structure.
  std::uint64_t a = base_seed;
  std::uint64_t b = stream_index ^ 0xD2B74407B1CE6E93ull;
  const std::uint64_t mixed = splitmix64(a) ^ rotl(splitmix64(b), 31);
  return Rng(mixed);
}

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher–Yates over an index vector; O(n) setup is fine at the
  // sizes used by the workload generators.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace rebooting::core
