// Parallel trajectory ensembles: fan N independent dynamics trajectories
// (DMM restarts, oscillator noise/coupling sweeps) across a thread pool.
//
// The paper's quantitative claims (Fig. 3/5 locking windows, Sec. IV DMM
// scaling) are all ensemble statistics, and practical memcomputing/oscillator
// studies are throughput-bound on exactly this many-trajectory workload. The
// runner's contract is built for reproducibility:
//
//  - Indices are claimed from an atomic counter in strictly increasing order,
//    so trajectory i only ever runs after 0..i-1 have been *claimed*.
//  - The body must derive all randomness from its index (Rng::stream(seed, i))
//    and write results only into its own slot — then every trajectory's
//    output is bit-identical regardless of thread count or scheduling.
//  - Early stop (body returns false) only prevents *unclaimed* indices from
//    starting; in-flight trajectories finish. Combined with in-order
//    claiming, the lowest "winning" index is deterministic across thread
//    counts: a winner at index s implies 0..s-1 were claimed before s and run
//    to completion, so no lower winner can be missed.
//
// Each worker owns one Workspace for the lifetime of the run, so trajectory
// bodies built on core/dynamics.h allocate nothing after their first
// iteration on that worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"
#include "core/dynamics.h"
#include "core/types.h"

namespace rebooting::core {

struct EnsembleOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Capped at the
  /// trajectory count; 1 runs inline on the calling thread.
  std::size_t threads = 0;
  /// Metric prefix: <label>.trajectories, <label>.trajectory_seconds (the
  /// per-trajectory step/wall histogram), <label>.early_stop.
  std::string telemetry_label = "ensemble";
};

struct EnsembleStats {
  std::size_t trajectories = 0;  ///< bodies that actually ran
  std::size_t threads_used = 0;
  bool stopped_early = false;
  Real wall_seconds = 0.0;
  Real trajectories_per_second = 0.0;
};

/// Trajectory body: run trajectory `index` using the worker-owned workspace.
/// Return false to request an early stop of all unclaimed trajectories.
using EnsembleBody = std::function<bool(std::size_t index, Workspace& ws)>;

/// Runs `count` trajectories across the pool and blocks until every claimed
/// trajectory finished. Exceptions thrown by the body stop the ensemble and
/// the first one is rethrown here. Implemented on the sliced runner below
/// with an unlimited budget, so both paths share one worker pool and one
/// determinism argument.
EnsembleStats run_ensemble(std::size_t count, const EnsembleOptions& opts,
                           const EnsembleBody& body);

// ---------------------------------------------------------------------------
// Resumable (sliced) ensembles
// ---------------------------------------------------------------------------

/// What one slice of one trajectory reports back to the runner.
struct SliceStatus {
  /// Trajectory reached its natural end (its per-trajectory checkpoint holds
  /// the final state; results are recoverable from it at any later time).
  bool done = false;
  /// Deterministic early stop: no trajectory with a *higher* index than this
  /// one should be advanced further (mirrors EnsembleBody returning false).
  bool request_stop = false;
};

/// Sliced trajectory body: advance trajectory `index` by at most `budget`,
/// keeping all resumable state inside `ckpt`. A fresh trajectory arrives
/// with an empty checkpoint (ckpt.tag.empty()); the body initializes it.
/// All randomness must live in ckpt.rng (seeded via Rng::stream(seed, index))
/// so a resumed slice — on any thread, in any process — continues the exact
/// stream.
using SlicedEnsembleBody = std::function<SliceStatus(
    std::size_t index, Checkpoint& ckpt, const SliceBudget& budget,
    Workspace& ws)>;

/// The resumable state of a whole ensemble: one checkpoint per trajectory
/// plus the claim/finish bookkeeping. Serializes to JSON (round-trippable)
/// so an ensemble can be parked to disk mid-flight and spliced back —
/// including across a SIGKILL.
struct EnsembleCheckpoint {
  static constexpr std::uint64_t kNoStop =
      std::numeric_limits<std::uint64_t>::max();

  std::size_t count = 0;                 ///< total trajectories
  std::vector<Checkpoint> trajectories;  ///< size == count once initialized
  std::vector<unsigned char> started;    ///< body has seen this index
  std::vector<unsigned char> finished;   ///< trajectory reached its end
  /// Lowest index whose slice requested a stop; trajectories with a higher
  /// index are no longer advanced (their checkpoints stay parked), while
  /// indices <= stop_index are still driven to completion — that keeps the
  /// winning index deterministic, exactly as in the unsliced runner.
  std::uint64_t stop_index = kNoStop;

  bool initialized() const { return count != 0 && !trajectories.empty(); }
  /// True when every trajectory that still matters (index <= stop_index)
  /// has finished.
  bool done() const;
  /// Indices the next invocation would advance (unfinished, below the stop).
  std::size_t pending() const;

  std::string json_dump() const;
  static std::optional<EnsembleCheckpoint> from_json(std::string_view text);
};

struct SlicedEnsembleResult {
  bool done = false;       ///< ensemble finished; no further calls needed
  EnsembleStats stats;     ///< stats for *this invocation's* slices
  std::size_t slices = 0;  ///< trajectory slices executed this invocation
};

/// Advances every pending trajectory of the ensemble by one slice of
/// `budget` and returns, leaving `ckpt` ready to be resumed (or serialized).
/// Called with an unlimited budget it behaves exactly like run_ensemble.
/// Trajectories are claimed in ascending index order by the same atomic
/// protocol as run_ensemble, so results and the winning index are
/// bit-identical at any thread count, any slicing, and across resumes.
SlicedEnsembleResult run_ensemble_sliced(std::size_t count,
                                         const EnsembleOptions& opts,
                                         const SliceBudget& budget,
                                         EnsembleCheckpoint& ckpt,
                                         const SlicedEnsembleBody& body);

}  // namespace rebooting::core
