// Parallel trajectory ensembles: fan N independent dynamics trajectories
// (DMM restarts, oscillator noise/coupling sweeps) across a thread pool.
//
// The paper's quantitative claims (Fig. 3/5 locking windows, Sec. IV DMM
// scaling) are all ensemble statistics, and practical memcomputing/oscillator
// studies are throughput-bound on exactly this many-trajectory workload. The
// runner's contract is built for reproducibility:
//
//  - Indices are claimed from an atomic counter in strictly increasing order,
//    so trajectory i only ever runs after 0..i-1 have been *claimed*.
//  - The body must derive all randomness from its index (Rng::stream(seed, i))
//    and write results only into its own slot — then every trajectory's
//    output is bit-identical regardless of thread count or scheduling.
//  - Early stop (body returns false) only prevents *unclaimed* indices from
//    starting; in-flight trajectories finish. Combined with in-order
//    claiming, the lowest "winning" index is deterministic across thread
//    counts: a winner at index s implies 0..s-1 were claimed before s and run
//    to completion, so no lower winner can be missed.
//
// Each worker owns one Workspace for the lifetime of the run, so trajectory
// bodies built on core/dynamics.h allocate nothing after their first
// iteration on that worker.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "core/dynamics.h"
#include "core/types.h"

namespace rebooting::core {

struct EnsembleOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Capped at the
  /// trajectory count; 1 runs inline on the calling thread.
  std::size_t threads = 0;
  /// Metric prefix: <label>.trajectories, <label>.trajectory_seconds (the
  /// per-trajectory step/wall histogram), <label>.early_stop.
  std::string telemetry_label = "ensemble";
};

struct EnsembleStats {
  std::size_t trajectories = 0;  ///< bodies that actually ran
  std::size_t threads_used = 0;
  bool stopped_early = false;
  Real wall_seconds = 0.0;
  Real trajectories_per_second = 0.0;
};

/// Trajectory body: run trajectory `index` using the worker-owned workspace.
/// Return false to request an early stop of all unclaimed trajectories.
using EnsembleBody = std::function<bool(std::size_t index, Workspace& ws)>;

/// Runs `count` trajectories across the pool and blocks until every claimed
/// trajectory finished. Exceptions thrown by the body stop the ensemble and
/// the first one is rethrown here.
EnsembleStats run_ensemble(std::size_t count, const EnsembleOptions& opts,
                           const EnsembleBody& body);

}  // namespace rebooting::core
