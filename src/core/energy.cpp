#include "core/energy.h"

#include <stdexcept>

namespace rebooting::core {

CmosTechnology CmosTechnology::node_32nm() {
  return CmosTechnology{.node_name = "32nm",
                        .vdd = 0.9,
                        .gate_capacitance = 1.0e-15,
                        .wire_overhead = 0.6,
                        .leakage_per_gate = 25.0e-9,
                        .fo4_delay = 15.0e-12};
}

CmosTechnology CmosTechnology::node_45nm() {
  return CmosTechnology{.node_name = "45nm",
                        .vdd = 1.0,
                        .gate_capacitance = 1.4e-15,
                        .wire_overhead = 0.6,
                        .leakage_per_gate = 30.0e-9,
                        .fo4_delay = 20.0e-12};
}

CmosTechnology CmosTechnology::node_22nm() {
  return CmosTechnology{.node_name = "22nm",
                        .vdd = 0.8,
                        .gate_capacitance = 0.7e-15,
                        .wire_overhead = 0.7,
                        .leakage_per_gate = 20.0e-9,
                        .fo4_delay = 11.0e-12};
}

Real CmosTechnology::switching_energy() const {
  return (1.0 + wire_overhead) * gate_capacitance * vdd * vdd;
}

Real GateInventory::nand2_equivalents() const {
  return 0.5 * static_cast<Real>(inverters) + static_cast<Real>(nand2) +
         3.0 * static_cast<Real>(xor2) + 6.0 * static_cast<Real>(full_adders) +
         8.0 * static_cast<Real>(flipflops) + 3.0 * static_cast<Real>(mux2);
}

GateInventory& GateInventory::operator+=(const GateInventory& other) {
  inverters += other.inverters;
  nand2 += other.nand2;
  xor2 += other.xor2;
  full_adders += other.full_adders;
  flipflops += other.flipflops;
  mux2 += other.mux2;
  return *this;
}

BlockPower estimate_block_power(const CmosTechnology& tech,
                                const GateInventory& gates, Real frequency,
                                Real activity) {
  if (frequency < 0.0 || activity < 0.0 || activity > 1.0)
    throw std::invalid_argument("estimate_block_power: bad frequency/activity");
  const Real n_eq = gates.nand2_equivalents();
  BlockPower p;
  p.dynamic_watts = n_eq * activity * tech.switching_energy() * frequency;
  p.leakage_watts = n_eq * tech.leakage_per_gate;
  return p;
}

Real block_energy_for_ops(const CmosTechnology& tech, const GateInventory& gates,
                          Real frequency, Real activity, Real ops,
                          Real cycles_per_op) {
  if (frequency <= 0.0)
    throw std::invalid_argument("block_energy_for_ops: frequency must be > 0");
  const BlockPower p = estimate_block_power(tech, gates, frequency, activity);
  const Real cycles = ops * cycles_per_op;
  const Real wall_time = cycles / frequency;
  const Real energy_per_cycle = p.dynamic_watts / frequency;
  return cycles * energy_per_cycle + p.leakage_watts * wall_time;
}

}  // namespace rebooting::core
