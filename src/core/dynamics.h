// Static-dispatch dynamics kernels: the integration hot path of both physics
// engines, without std::function.
//
// The legacy ode.h API types every right-hand side as a std::function, which
// costs an indirect call per RHS evaluation (2 per Heun step, 6 per RKF45
// step) and blocks inlining of the step arithmetic into the RHS loop. The
// ensemble workloads of Sec. III/IV (restart sweeps, noise seeds, coupling
// ablations) evaluate the RHS billions of times, so here the kernel is a
// *type*: any struct with an inlinable
//
//   void rhs(Real t, std::span<const Real> y, std::span<Real> dydt)
//
// member (const or not — stateful kernels such as the SOLG gate-memory sweep
// mutate themselves) can be passed to the templated steppers and drivers
// below, and the compiler fuses RHS and stepper into one loop nest. ode.h
// remains as a thin adapter (FunctionKernel) so existing call sites keep
// compiling unchanged.
//
// Scratch ownership moves to the caller: a Workspace is a grow-only arena of
// Real/byte blocks that a trajectory body acquires from once per solve and
// the ensemble runner (core/ensemble.h) hands each worker thread its own, so
// repeated trajectories allocate nothing after the first.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/types.h"

namespace rebooting::core {

/// Requirements on a dynamics kernel: writes dy/dt(t, y) into dydt. Both
/// spans have the system dimension; rhs must not resize or alias them.
template <typename K>
concept DynamicsKernel =
    requires(K k, Real t, std::span<const Real> y, std::span<Real> dydt) {
      { k.rhs(t, y, dydt) };
    };

/// Grow-only scratch arena owned by the caller of a solve. Each acquire()
/// hands out one stable block (blocks never move once created), so nested
/// holders cannot invalidate each other; a Scope rewinds the cursor on exit
/// so the *next* trajectory reuses the same blocks without reallocating.
class Workspace {
 public:
  /// RAII cursor checkpoint: blocks acquired inside the scope are recycled
  /// (not freed) when it ends. Take one per trajectory/solve.
  class Scope {
   public:
    explicit Scope(Workspace& ws)
        : ws_(&ws), real_mark_(ws.real_cursor_), byte_mark_(ws.byte_cursor_) {}
    ~Scope() {
      ws_->real_cursor_ = real_mark_;
      ws_->byte_cursor_ = byte_mark_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace* ws_;
    std::size_t real_mark_;
    std::size_t byte_mark_;
  };

  Scope scope() { return Scope(*this); }

  /// Next Real block of at least n elements. Contents are unspecified (reused
  /// blocks keep stale values); callers must initialize what they read.
  std::span<Real> real(std::size_t n) {
    if (real_cursor_ == real_blocks_.size()) real_blocks_.emplace_back();
    std::vector<Real>& block = real_blocks_[real_cursor_++];
    if (block.size() < n) block.resize(n);
    return {block.data(), n};
  }

  /// Next byte block of at least n elements (flags, sign bits, ...).
  std::span<unsigned char> bytes(std::size_t n) {
    if (byte_cursor_ == byte_blocks_.size()) byte_blocks_.emplace_back();
    std::vector<unsigned char>& block = byte_blocks_[byte_cursor_++];
    if (block.size() < n) block.resize(n);
    return {block.data(), n};
  }

  /// Rewinds both cursors (top-level reuse without a Scope). Must not be
  /// called while blocks from this workspace are still in use.
  void reset() {
    real_cursor_ = 0;
    byte_cursor_ = 0;
  }

 private:
  // Blocks are separate vectors (not one slab) so growing one never moves
  // another — acquired spans stay valid for the workspace's lifetime.
  std::vector<std::vector<Real>> real_blocks_;
  std::vector<std::vector<unsigned char>> byte_blocks_;
  std::size_t real_cursor_ = 0;
  std::size_t byte_cursor_ = 0;
};

/// Fixed-step integration schemes (shared with the legacy ode.h API).
enum class Scheme { kEuler, kHeun, kRk4 };

/// Tag type for "no observer": the drivers compile the observer branch out.
struct NoObserver {};

namespace detail {

inline void check_scratch(std::span<Real> y, std::span<Real> scratch,
                          std::size_t multiple) {
  if (scratch.size() < multiple * y.size())
    throw std::invalid_argument("ode step: scratch too small");
}

template <typename Observer>
inline constexpr bool kHasObserver =
    !std::is_same_v<std::remove_cvref_t<Observer>, NoObserver>;

}  // namespace detail

/// Stateless single steps (y updated in place). `scratch` must provide at
/// least 1x / 3x / 5x y.size() reals respectively; callers that manage their
/// own loops (the oscillator engine interleaves hysteresis events between
/// steps) acquire it once from a Workspace outside the loop.
template <DynamicsKernel Kernel>
inline void euler_step(Kernel& f, Real t, Real dt, std::span<Real> y,
                       std::span<Real> scratch) {
  detail::check_scratch(y, scratch, 1);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  f.rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) y[i] += dt * k1[i];
}

template <DynamicsKernel Kernel>
inline void heun_step(Kernel& f, Real t, Real dt, std::span<Real> y,
                      std::span<Real> scratch) {
  detail::check_scratch(y, scratch, 3);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  auto k2 = scratch.subspan(n, n);
  auto tmp = scratch.subspan(2 * n, n);
  f.rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k1[i];
  f.rhs(t + dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) y[i] += 0.5 * dt * (k1[i] + k2[i]);
}

template <DynamicsKernel Kernel>
inline void rk4_step(Kernel& f, Real t, Real dt, std::span<Real> y,
                     std::span<Real> scratch) {
  detail::check_scratch(y, scratch, 5);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  auto k2 = scratch.subspan(n, n);
  auto k3 = scratch.subspan(2 * n, n);
  auto k4 = scratch.subspan(3 * n, n);
  auto tmp = scratch.subspan(4 * n, n);
  f.rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
  f.rhs(t + 0.5 * dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
  f.rhs(t + 0.5 * dt, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k3[i];
  f.rhs(t + dt, tmp, k4);
  for (std::size_t i = 0; i < n; ++i)
    y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

/// Resume cursor for a fixed-step integration. The drift-free time grid
/// (t = t0 + i*dt) makes the step index the *entire* stepper state besides y:
/// resuming at step i reproduces the remaining steps bit-exactly because
/// every time instant is recomputed from i, never accumulated.
struct FixedCursor {
  std::uint64_t step = 0;  ///< next step index to execute
};

/// What one bounded slice of integration did.
struct SliceOutcome {
  bool done = false;                ///< reached t1 or stopped by observer
  Real t_reached = 0.0;             ///< time the trajectory is parked at
  std::size_t steps_taken = 0;      ///< steps executed within this slice
  bool stopped_by_observer = false;
};

namespace detail {

/// Slice stopwatch: wall budgets are checked between steps only, and only
/// after at least one step, so every slice makes forward progress.
class SliceClock {
 public:
  explicit SliceClock(const SliceBudget& budget)
      : budget_(budget),
        start_(budget.max_seconds > 0.0
                   ? std::chrono::steady_clock::now()
                   : std::chrono::steady_clock::time_point{}) {}

  bool exhausted(std::size_t steps_taken) const {
    if (steps_taken == 0) return false;
    if (budget_.max_steps != 0 && steps_taken >= budget_.max_steps)
      return true;
    if (budget_.max_seconds > 0.0) {
      const auto elapsed = std::chrono::duration<Real>(
          std::chrono::steady_clock::now() - start_);
      if (elapsed.count() >= budget_.max_seconds) return true;
    }
    return false;
  }

 private:
  SliceBudget budget_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

/// One budget-bounded slice of the fixed-step driver below. Advances y from
/// the cursor's step until t1 is reached, the observer stops the run, or the
/// budget is exhausted; the cursor always points at the next step to execute,
/// so calling again splices the trajectory with no seam. The arithmetic per
/// step is identical to an uninterrupted run — slicing can never change a
/// result, only where the pauses fall.
template <DynamicsKernel Kernel, typename Observer = NoObserver>
SliceOutcome integrate_fixed_slice(Kernel& f, Scheme scheme, Real t0, Real t1,
                                   Real dt, std::span<Real> y,
                                   FixedCursor& cursor,
                                   const SliceBudget& budget, Workspace& ws,
                                   Observer&& observe = {}) {
  if (!(dt > 0.0))
    throw std::invalid_argument("integrate_fixed: dt must be > 0");
  const auto ws_scope = ws.scope();
  std::span<Real> scratch = ws.real(5 * y.size());
  const detail::SliceClock clock(budget);
  SliceOutcome out;
  for (std::uint64_t i = cursor.step;; ++i) {
    const Real t = t0 + static_cast<Real>(i) * dt;
    if (t >= t1) {
      cursor.step = i;
      out.done = true;
      out.t_reached = t1;
      return out;
    }
    if (clock.exhausted(out.steps_taken)) {
      cursor.step = i;
      out.t_reached = t;
      return out;
    }
    const Real step = std::min(dt, t1 - t);
    switch (scheme) {
      case Scheme::kEuler:
        euler_step(f, t, step, y, scratch);
        break;
      case Scheme::kHeun:
        heun_step(f, t, step, y, scratch);
        break;
      case Scheme::kRk4:
        rk4_step(f, t, step, y, scratch);
        break;
    }
    ++out.steps_taken;
    const Real t_next = std::min(t0 + static_cast<Real>(i + 1) * dt, t1);
    if constexpr (detail::kHasObserver<Observer>) {
      if (!observe(t_next, std::span<const Real>(y))) {
        cursor.step = i + 1;
        out.done = true;
        out.t_reached = t_next;
        out.stopped_by_observer = true;
        return out;
      }
    }
  }
}

/// Fixed-step driver: integrates from t0 to t1 in steps of dt (final step
/// shortened to land exactly on t1). Time is tracked as t0 + i*dt — an
/// accumulating `t += dt` drifts by an ulp per step, which over the millions
/// of steps of an oscillator run shifts every sample instant and the final
/// time. Observer (bool(Real t, std::span<const Real> y)) is called after
/// each step; returns the final time reached (== t1 unless stopped early).
/// Implemented as a single unlimited slice of integrate_fixed_slice.
template <DynamicsKernel Kernel, typename Observer = NoObserver>
Real integrate_fixed(Kernel& f, Scheme scheme, Real t0, Real t1, Real dt,
                     std::span<Real> y, Workspace& ws,
                     Observer&& observe = {}) {
  FixedCursor cursor;
  return integrate_fixed_slice(f, scheme, t0, t1, dt, y, cursor, SliceBudget{},
                               ws, std::forward<Observer>(observe))
      .t_reached;
}

/// Adaptive Runge–Kutta–Fehlberg 4(5) controls (shared with ode.h).
struct AdaptiveOptions {
  Real abs_tol = 1e-8;
  Real rel_tol = 1e-6;
  Real initial_dt = 1e-3;
  Real min_dt = 1e-12;
  Real max_dt = 1.0;
  /// Step-count guard: integration aborts (returning the time reached) after
  /// this many accepted steps, so a stiff runaway cannot hang a benchmark.
  std::size_t max_steps = 50'000'000;
};

struct AdaptiveResult {
  Real t_final = 0.0;
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  bool stopped_by_observer = false;
  bool hit_step_limit = false;
};

/// Resume cursor for the adaptive driver. Unlike the fixed grid, RKF45
/// accumulates t and carries the controller's step size across steps, so
/// both are part of the resumable state alongside the accept/reject tallies.
struct AdaptiveCursor {
  Real t = 0.0;
  Real dt = 0.0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  bool initialized = false;  ///< first slice seeds t/dt from (t0, opts)
};

/// Slice outcome of the adaptive driver: `result` carries the *cumulative*
/// tallies so far (mirroring the cursor); its flags are only final once
/// done is true.
struct AdaptiveSliceOutcome {
  bool done = false;
  AdaptiveResult result;
  std::size_t attempts_taken = 0;  ///< accepted + rejected steps this slice
};

/// One budget-bounded slice of the adaptive RKF45 driver. Identical
/// arithmetic to integrate_adaptive; the budget counts attempted steps
/// (accepted + rejected) so a stiff rejecting region still yields promptly.
template <DynamicsKernel Kernel, typename Observer = NoObserver>
AdaptiveSliceOutcome integrate_adaptive_slice(Kernel& f, Real t0, Real t1,
                                              std::span<Real> y,
                                              const AdaptiveOptions& opts,
                                              AdaptiveCursor& cursor,
                                              const SliceBudget& budget,
                                              Workspace& ws,
                                              Observer&& observe = {}) {
  // Classic RKF45 (Fehlberg) tableau.
  static constexpr Real a21 = 1.0 / 4.0;
  static constexpr Real a31 = 3.0 / 32.0, a32 = 9.0 / 32.0;
  static constexpr Real a41 = 1932.0 / 2197.0, a42 = -7200.0 / 2197.0,
                        a43 = 7296.0 / 2197.0;
  static constexpr Real a51 = 439.0 / 216.0, a52 = -8.0, a53 = 3680.0 / 513.0,
                        a54 = -845.0 / 4104.0;
  static constexpr Real a61 = -8.0 / 27.0, a62 = 2.0, a63 = -3544.0 / 2565.0,
                        a64 = 1859.0 / 4104.0, a65 = -11.0 / 40.0;
  static constexpr Real b41 = 25.0 / 216.0, b43 = 1408.0 / 2565.0,
                        b44 = 2197.0 / 4104.0, b45 = -1.0 / 5.0;
  static constexpr Real b51 = 16.0 / 135.0, b53 = 6656.0 / 12825.0,
                        b54 = 28561.0 / 56430.0, b55 = -9.0 / 50.0,
                        b56 = 2.0 / 55.0;
  static constexpr Real c2 = 1.0 / 4.0, c3 = 3.0 / 8.0, c4 = 12.0 / 13.0,
                        c6 = 1.0 / 2.0;

  const std::size_t n = y.size();
  const auto ws_scope = ws.scope();
  std::span<Real> stages = ws.real(8 * n);
  auto k1 = stages.subspan(0, n), k2 = stages.subspan(n, n),
       k3 = stages.subspan(2 * n, n), k4 = stages.subspan(3 * n, n),
       k5 = stages.subspan(4 * n, n), k6 = stages.subspan(5 * n, n),
       tmp = stages.subspan(6 * n, n), y5 = stages.subspan(7 * n, n);

  if (!cursor.initialized) {
    cursor.t = t0;
    cursor.dt = std::clamp(opts.initial_dt, opts.min_dt, opts.max_dt);
    cursor.initialized = true;
  }

  const detail::SliceClock clock(budget);
  AdaptiveSliceOutcome out;
  AdaptiveResult res;
  res.accepted_steps = static_cast<std::size_t>(cursor.accepted);
  res.rejected_steps = static_cast<std::size_t>(cursor.rejected);
  Real t = cursor.t;
  Real dt = cursor.dt;
  out.done = true;  // cleared below if the budget interrupts the loop

  while (t < t1) {
    if (res.accepted_steps >= opts.max_steps) {
      res.hit_step_limit = true;
      break;
    }
    if (clock.exhausted(out.attempts_taken)) {
      out.done = false;
      break;
    }
    dt = std::min(dt, t1 - t);

    f.rhs(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * a21 * k1[i];
    f.rhs(t + c2 * dt, tmp, k2);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a31 * k1[i] + a32 * k2[i]);
    f.rhs(t + c3 * dt, tmp, k3);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a41 * k1[i] + a42 * k2[i] + a43 * k3[i]);
    f.rhs(t + c4 * dt, tmp, k4);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] =
          y[i] + dt * (a51 * k1[i] + a52 * k2[i] + a53 * k3[i] + a54 * k4[i]);
    f.rhs(t + dt, tmp, k5);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a61 * k1[i] + a62 * k2[i] + a63 * k3[i] +
                            a64 * k4[i] + a65 * k5[i]);
    f.rhs(t + c6 * dt, tmp, k6);

    // 4th- and 5th-order solutions; the difference estimates the local error.
    Real err_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Real y4 =
          y[i] + dt * (b41 * k1[i] + b43 * k3[i] + b44 * k4[i] + b45 * k5[i]);
      y5[i] = y[i] + dt * (b51 * k1[i] + b53 * k3[i] + b54 * k4[i] +
                           b55 * k5[i] + b56 * k6[i]);
      const Real scale = opts.abs_tol +
                         opts.rel_tol * std::max(std::abs(y[i]), std::abs(y5[i]));
      const Real e = (y5[i] - y4) / scale;
      err_norm += e * e;
    }
    err_norm = std::sqrt(err_norm / static_cast<Real>(n));

    ++out.attempts_taken;
    bool observer_stop = false;
    if (err_norm <= 1.0 || dt <= opts.min_dt) {
      // Accept (forcibly when already at the minimum step).
      t += dt;
      std::copy(y5.begin(), y5.end(), y.begin());
      ++res.accepted_steps;
      if constexpr (detail::kHasObserver<Observer>) {
        if (!observe(t, std::span<const Real>(y))) {
          res.stopped_by_observer = true;
          observer_stop = true;
        }
      }
    } else {
      ++res.rejected_steps;
    }

    const Real factor =
        (err_norm > 0.0) ? std::clamp(0.9 * std::pow(err_norm, -0.2), 0.2, 5.0)
                         : 5.0;
    dt = std::clamp(dt * factor, opts.min_dt, opts.max_dt);
    if (observer_stop) break;
  }

  cursor.t = t;
  cursor.dt = dt;
  cursor.accepted = res.accepted_steps;
  cursor.rejected = res.rejected_steps;
  res.t_final = t;
  out.result = res;
  return out;
}

/// Adaptive RKF45 driver with PI-free classic step control (factor clamped to
/// [0.2, 5]). All stage storage comes from the workspace. Implemented as a
/// single unlimited slice of integrate_adaptive_slice.
template <DynamicsKernel Kernel, typename Observer = NoObserver>
AdaptiveResult integrate_adaptive(Kernel& f, Real t0, Real t1,
                                  std::span<Real> y,
                                  const AdaptiveOptions& opts, Workspace& ws,
                                  Observer&& observe = {}) {
  AdaptiveCursor cursor;
  return integrate_adaptive_slice(f, t0, t1, y, opts, cursor, SliceBudget{},
                                  ws, std::forward<Observer>(observe))
      .result;
}

}  // namespace rebooting::core
