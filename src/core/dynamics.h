// Static-dispatch dynamics kernels: the integration hot path of both physics
// engines, without std::function.
//
// The legacy ode.h API types every right-hand side as a std::function, which
// costs an indirect call per RHS evaluation (2 per Heun step, 6 per RKF45
// step) and blocks inlining of the step arithmetic into the RHS loop. The
// ensemble workloads of Sec. III/IV (restart sweeps, noise seeds, coupling
// ablations) evaluate the RHS billions of times, so here the kernel is a
// *type*: any struct with an inlinable
//
//   void rhs(Real t, std::span<const Real> y, std::span<Real> dydt)
//
// member (const or not — stateful kernels such as the SOLG gate-memory sweep
// mutate themselves) can be passed to the templated steppers and drivers
// below, and the compiler fuses RHS and stepper into one loop nest. ode.h
// remains as a thin adapter (FunctionKernel) so existing call sites keep
// compiling unchanged.
//
// Scratch ownership moves to the caller: a Workspace is a grow-only arena of
// Real/byte blocks that a trajectory body acquires from once per solve and
// the ensemble runner (core/ensemble.h) hands each worker thread its own, so
// repeated trajectories allocate nothing after the first.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

/// Requirements on a dynamics kernel: writes dy/dt(t, y) into dydt. Both
/// spans have the system dimension; rhs must not resize or alias them.
template <typename K>
concept DynamicsKernel =
    requires(K k, Real t, std::span<const Real> y, std::span<Real> dydt) {
      { k.rhs(t, y, dydt) };
    };

/// Grow-only scratch arena owned by the caller of a solve. Each acquire()
/// hands out one stable block (blocks never move once created), so nested
/// holders cannot invalidate each other; a Scope rewinds the cursor on exit
/// so the *next* trajectory reuses the same blocks without reallocating.
class Workspace {
 public:
  /// RAII cursor checkpoint: blocks acquired inside the scope are recycled
  /// (not freed) when it ends. Take one per trajectory/solve.
  class Scope {
   public:
    explicit Scope(Workspace& ws)
        : ws_(&ws), real_mark_(ws.real_cursor_), byte_mark_(ws.byte_cursor_) {}
    ~Scope() {
      ws_->real_cursor_ = real_mark_;
      ws_->byte_cursor_ = byte_mark_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace* ws_;
    std::size_t real_mark_;
    std::size_t byte_mark_;
  };

  Scope scope() { return Scope(*this); }

  /// Next Real block of at least n elements. Contents are unspecified (reused
  /// blocks keep stale values); callers must initialize what they read.
  std::span<Real> real(std::size_t n) {
    if (real_cursor_ == real_blocks_.size()) real_blocks_.emplace_back();
    std::vector<Real>& block = real_blocks_[real_cursor_++];
    if (block.size() < n) block.resize(n);
    return {block.data(), n};
  }

  /// Next byte block of at least n elements (flags, sign bits, ...).
  std::span<unsigned char> bytes(std::size_t n) {
    if (byte_cursor_ == byte_blocks_.size()) byte_blocks_.emplace_back();
    std::vector<unsigned char>& block = byte_blocks_[byte_cursor_++];
    if (block.size() < n) block.resize(n);
    return {block.data(), n};
  }

  /// Rewinds both cursors (top-level reuse without a Scope). Must not be
  /// called while blocks from this workspace are still in use.
  void reset() {
    real_cursor_ = 0;
    byte_cursor_ = 0;
  }

 private:
  // Blocks are separate vectors (not one slab) so growing one never moves
  // another — acquired spans stay valid for the workspace's lifetime.
  std::vector<std::vector<Real>> real_blocks_;
  std::vector<std::vector<unsigned char>> byte_blocks_;
  std::size_t real_cursor_ = 0;
  std::size_t byte_cursor_ = 0;
};

/// Fixed-step integration schemes (shared with the legacy ode.h API).
enum class Scheme { kEuler, kHeun, kRk4 };

/// Tag type for "no observer": the drivers compile the observer branch out.
struct NoObserver {};

namespace detail {

inline void check_scratch(std::span<Real> y, std::span<Real> scratch,
                          std::size_t multiple) {
  if (scratch.size() < multiple * y.size())
    throw std::invalid_argument("ode step: scratch too small");
}

template <typename Observer>
inline constexpr bool kHasObserver =
    !std::is_same_v<std::remove_cvref_t<Observer>, NoObserver>;

}  // namespace detail

/// Stateless single steps (y updated in place). `scratch` must provide at
/// least 1x / 3x / 5x y.size() reals respectively; callers that manage their
/// own loops (the oscillator engine interleaves hysteresis events between
/// steps) acquire it once from a Workspace outside the loop.
template <DynamicsKernel Kernel>
inline void euler_step(Kernel& f, Real t, Real dt, std::span<Real> y,
                       std::span<Real> scratch) {
  detail::check_scratch(y, scratch, 1);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  f.rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) y[i] += dt * k1[i];
}

template <DynamicsKernel Kernel>
inline void heun_step(Kernel& f, Real t, Real dt, std::span<Real> y,
                      std::span<Real> scratch) {
  detail::check_scratch(y, scratch, 3);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  auto k2 = scratch.subspan(n, n);
  auto tmp = scratch.subspan(2 * n, n);
  f.rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k1[i];
  f.rhs(t + dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) y[i] += 0.5 * dt * (k1[i] + k2[i]);
}

template <DynamicsKernel Kernel>
inline void rk4_step(Kernel& f, Real t, Real dt, std::span<Real> y,
                     std::span<Real> scratch) {
  detail::check_scratch(y, scratch, 5);
  const std::size_t n = y.size();
  auto k1 = scratch.subspan(0, n);
  auto k2 = scratch.subspan(n, n);
  auto k3 = scratch.subspan(2 * n, n);
  auto k4 = scratch.subspan(3 * n, n);
  auto tmp = scratch.subspan(4 * n, n);
  f.rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
  f.rhs(t + 0.5 * dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
  f.rhs(t + 0.5 * dt, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k3[i];
  f.rhs(t + dt, tmp, k4);
  for (std::size_t i = 0; i < n; ++i)
    y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

/// Fixed-step driver: integrates from t0 to t1 in steps of dt (final step
/// shortened to land exactly on t1). Time is tracked as t0 + i*dt — an
/// accumulating `t += dt` drifts by an ulp per step, which over the millions
/// of steps of an oscillator run shifts every sample instant and the final
/// time. Observer (bool(Real t, std::span<const Real> y)) is called after
/// each step; returns the final time reached (== t1 unless stopped early).
template <DynamicsKernel Kernel, typename Observer = NoObserver>
Real integrate_fixed(Kernel& f, Scheme scheme, Real t0, Real t1, Real dt,
                     std::span<Real> y, Workspace& ws,
                     Observer&& observe = {}) {
  if (!(dt > 0.0))
    throw std::invalid_argument("integrate_fixed: dt must be > 0");
  const auto ws_scope = ws.scope();
  std::span<Real> scratch = ws.real(5 * y.size());
  for (std::size_t i = 0;; ++i) {
    const Real t = t0 + static_cast<Real>(i) * dt;
    if (t >= t1) return t1;
    const Real step = std::min(dt, t1 - t);
    switch (scheme) {
      case Scheme::kEuler:
        euler_step(f, t, step, y, scratch);
        break;
      case Scheme::kHeun:
        heun_step(f, t, step, y, scratch);
        break;
      case Scheme::kRk4:
        rk4_step(f, t, step, y, scratch);
        break;
    }
    const Real t_next = std::min(t0 + static_cast<Real>(i + 1) * dt, t1);
    if constexpr (detail::kHasObserver<Observer>) {
      if (!observe(t_next, std::span<const Real>(y))) return t_next;
    }
  }
}

/// Adaptive Runge–Kutta–Fehlberg 4(5) controls (shared with ode.h).
struct AdaptiveOptions {
  Real abs_tol = 1e-8;
  Real rel_tol = 1e-6;
  Real initial_dt = 1e-3;
  Real min_dt = 1e-12;
  Real max_dt = 1.0;
  /// Step-count guard: integration aborts (returning the time reached) after
  /// this many accepted steps, so a stiff runaway cannot hang a benchmark.
  std::size_t max_steps = 50'000'000;
};

struct AdaptiveResult {
  Real t_final = 0.0;
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  bool stopped_by_observer = false;
  bool hit_step_limit = false;
};

/// Adaptive RKF45 driver with PI-free classic step control (factor clamped to
/// [0.2, 5]). All stage storage comes from the workspace.
template <DynamicsKernel Kernel, typename Observer = NoObserver>
AdaptiveResult integrate_adaptive(Kernel& f, Real t0, Real t1,
                                  std::span<Real> y,
                                  const AdaptiveOptions& opts, Workspace& ws,
                                  Observer&& observe = {}) {
  // Classic RKF45 (Fehlberg) tableau.
  static constexpr Real a21 = 1.0 / 4.0;
  static constexpr Real a31 = 3.0 / 32.0, a32 = 9.0 / 32.0;
  static constexpr Real a41 = 1932.0 / 2197.0, a42 = -7200.0 / 2197.0,
                        a43 = 7296.0 / 2197.0;
  static constexpr Real a51 = 439.0 / 216.0, a52 = -8.0, a53 = 3680.0 / 513.0,
                        a54 = -845.0 / 4104.0;
  static constexpr Real a61 = -8.0 / 27.0, a62 = 2.0, a63 = -3544.0 / 2565.0,
                        a64 = 1859.0 / 4104.0, a65 = -11.0 / 40.0;
  static constexpr Real b41 = 25.0 / 216.0, b43 = 1408.0 / 2565.0,
                        b44 = 2197.0 / 4104.0, b45 = -1.0 / 5.0;
  static constexpr Real b51 = 16.0 / 135.0, b53 = 6656.0 / 12825.0,
                        b54 = 28561.0 / 56430.0, b55 = -9.0 / 50.0,
                        b56 = 2.0 / 55.0;
  static constexpr Real c2 = 1.0 / 4.0, c3 = 3.0 / 8.0, c4 = 12.0 / 13.0,
                        c6 = 1.0 / 2.0;

  const std::size_t n = y.size();
  const auto ws_scope = ws.scope();
  std::span<Real> stages = ws.real(8 * n);
  auto k1 = stages.subspan(0, n), k2 = stages.subspan(n, n),
       k3 = stages.subspan(2 * n, n), k4 = stages.subspan(3 * n, n),
       k5 = stages.subspan(4 * n, n), k6 = stages.subspan(5 * n, n),
       tmp = stages.subspan(6 * n, n), y5 = stages.subspan(7 * n, n);

  AdaptiveResult res;
  Real t = t0;
  Real dt = std::clamp(opts.initial_dt, opts.min_dt, opts.max_dt);

  while (t < t1) {
    if (res.accepted_steps >= opts.max_steps) {
      res.hit_step_limit = true;
      break;
    }
    dt = std::min(dt, t1 - t);

    f.rhs(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * a21 * k1[i];
    f.rhs(t + c2 * dt, tmp, k2);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a31 * k1[i] + a32 * k2[i]);
    f.rhs(t + c3 * dt, tmp, k3);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a41 * k1[i] + a42 * k2[i] + a43 * k3[i]);
    f.rhs(t + c4 * dt, tmp, k4);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] =
          y[i] + dt * (a51 * k1[i] + a52 * k2[i] + a53 * k3[i] + a54 * k4[i]);
    f.rhs(t + dt, tmp, k5);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + dt * (a61 * k1[i] + a62 * k2[i] + a63 * k3[i] +
                            a64 * k4[i] + a65 * k5[i]);
    f.rhs(t + c6 * dt, tmp, k6);

    // 4th- and 5th-order solutions; the difference estimates the local error.
    Real err_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Real y4 =
          y[i] + dt * (b41 * k1[i] + b43 * k3[i] + b44 * k4[i] + b45 * k5[i]);
      y5[i] = y[i] + dt * (b51 * k1[i] + b53 * k3[i] + b54 * k4[i] +
                           b55 * k5[i] + b56 * k6[i]);
      const Real scale = opts.abs_tol +
                         opts.rel_tol * std::max(std::abs(y[i]), std::abs(y5[i]));
      const Real e = (y5[i] - y4) / scale;
      err_norm += e * e;
    }
    err_norm = std::sqrt(err_norm / static_cast<Real>(n));

    if (err_norm <= 1.0 || dt <= opts.min_dt) {
      // Accept (forcibly when already at the minimum step).
      t += dt;
      std::copy(y5.begin(), y5.end(), y.begin());
      ++res.accepted_steps;
      if constexpr (detail::kHasObserver<Observer>) {
        if (!observe(t, std::span<const Real>(y))) {
          res.stopped_by_observer = true;
          break;
        }
      }
    } else {
      ++res.rejected_steps;
    }

    const Real factor =
        (err_norm > 0.0) ? std::clamp(0.9 * std::pow(err_norm, -0.2), 0.2, 5.0)
                         : 5.0;
    dt = std::clamp(dt * factor, opts.min_dt, opts.max_dt);
  }

  res.t_final = t;
  return res;
}

}  // namespace rebooting::core
