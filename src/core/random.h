// Deterministic, seedable pseudo-random number generation for every engine.
//
// We implement xoshiro256** (Blackman & Vigna) rather than relying on
// std::mt19937_64 so that streams are cheap to split per-worker and the
// sequence is identical across standard libraries — benchmark tables must be
// reproducible bit-for-bit from a seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

/// Complete serializable snapshot of an Rng: the four xoshiro lanes plus the
/// Box–Muller cache (normal() computes deviates in pairs; dropping the cached
/// one would shift every subsequent draw by half a pair). Restoring a state
/// resumes the stream bit-exactly, which is what makes checkpointed
/// trajectories identical to uninterrupted ones (core/checkpoint.h).
struct RngState {
  std::array<std::uint64_t, 4> lanes{};
  Real cached_normal = 0.0;
  bool has_cached_normal = false;

  bool operator==(const RngState&) const = default;
};

/// xoshiro256** 1.0 generator. Satisfies std::uniform_random_bit_generator,
/// so it can also be plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via splitmix64, which is the
  /// initialization recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform real in [0, 1).
  Real uniform();

  /// Uniform real in [lo, hi).
  Real uniform(Real lo, Real hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// rejection method.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  Real normal();

  /// Normal with the given mean and standard deviation.
  Real normal(Real mean, Real stddev);

  /// True with probability p.
  bool bernoulli(Real p);

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = uniform_index(i + 1);
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Returns a generator whose stream is independent of this one (created by
  /// drawing a fresh seed), for per-trial reproducibility in sweeps. Note
  /// this advances *this; for parallel ensembles prefer stream(), which is
  /// counter-based and free of shared state.
  Rng split();

  /// Counter-based stream split: a generator fully determined by
  /// (base_seed, stream_index). Ensemble trajectory i draws from
  /// stream(seed, i) and gets the same sequence no matter which worker thread
  /// runs it, in what order, or how many threads exist. Streams are
  /// decorrelated by two independent splitmix64 chains (the same finalizer
  /// the seeding path uses), so stream(s, 0), stream(s, 1), ... are as
  /// independent as freshly seeded generators.
  static Rng stream(std::uint64_t base_seed, std::uint64_t stream_index);

  /// Snapshots the full generator state (lanes + normal cache).
  RngState save() const;

  /// Rebuilds a generator from a snapshot; restore(save()) continues the
  /// stream exactly where save() left it.
  static Rng restore(const RngState& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  Real cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Draws `k` distinct indices uniformly from [0, n) (k <= n), in random order.
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t k);

}  // namespace rebooting::core
