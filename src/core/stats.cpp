#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rebooting::core {

Real mean(std::span<const Real> xs) {
  if (xs.empty()) return 0.0;
  Real s = 0.0;
  for (const Real x : xs) s += x;
  return s / static_cast<Real>(xs.size());
}

Real variance(std::span<const Real> xs) {
  if (xs.size() < 2) return 0.0;
  const Real m = mean(xs);
  Real s = 0.0;
  for (const Real x : xs) s += (x - m) * (x - m);
  return s / static_cast<Real>(xs.size() - 1);
}

Real stddev(std::span<const Real> xs) { return std::sqrt(variance(xs)); }

Real stderr_mean(std::span<const Real> xs) {
  if (xs.empty()) return 0.0;
  return stddev(xs) / std::sqrt(static_cast<Real>(xs.size()));
}

Real percentile(std::span<const Real> xs, Real p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("percentile: p not in [0,1]");
  std::vector<Real> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const Real pos = p * static_cast<Real>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const Real frac = pos - static_cast<Real>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

Real median(std::span<const Real> xs) { return percentile(xs, 0.5); }

Real min_value(std::span<const Real> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

Real max_value(std::span<const Real> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

LineFit fit_line(std::span<const Real> xs, std::span<const Real> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("fit_line: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("fit_line: need >= 2 points");
  const Real mx = mean(xs);
  const Real my = mean(ys);
  Real sxx = 0.0;
  Real sxy = 0.0;
  Real syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Real dx = xs[i] - mx;
    const Real dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("fit_line: constant x");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

PowerLawFit fit_power_law(std::span<const Real> xs, std::span<const Real> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("fit_power_law: size mismatch");
  std::vector<Real> lx;
  std::vector<Real> ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  if (lx.size() < 2)
    throw std::invalid_argument("fit_power_law: need >= 2 positive points");
  const LineFit lf = fit_line(lx, ly);
  PowerLawFit pf;
  pf.exponent = lf.slope;
  pf.amplitude = std::exp(lf.intercept);
  pf.r_squared = lf.r_squared;
  pf.points_used = lx.size();
  return pf;
}

ExponentialFit fit_exponential(std::span<const Real> xs,
                               std::span<const Real> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("fit_exponential: size mismatch");
  std::vector<Real> fx;
  std::vector<Real> ly;
  fx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (ys[i] > 0.0) {
      fx.push_back(xs[i]);
      ly.push_back(std::log(ys[i]));
    }
  }
  if (fx.size() < 2)
    throw std::invalid_argument("fit_exponential: need >= 2 positive points");
  const LineFit lf = fit_line(fx, ly);
  ExponentialFit ef;
  ef.rate = lf.slope;
  ef.amplitude = std::exp(lf.intercept);
  ef.r_squared = lf.r_squared;
  ef.points_used = fx.size();
  return ef;
}

Real correlation(std::span<const Real> xs, std::span<const Real> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const Real mx = mean(xs);
  const Real my = mean(ys);
  Real sxx = 0.0;
  Real sxy = 0.0;
  Real syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Real dx = xs[i] - mx;
    const Real dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(Real x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const Real delta = x - mean_;
  mean_ += delta / static_cast<Real>(n_);
  m2_ += delta * (x - mean_);
}

Real RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<Real>(n_ - 1);
}

Real RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(Real lo, Real hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(Real x) {
  const Real t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<Real>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

Real Histogram::bin_center(std::size_t i) const {
  const Real width = (hi_ - lo_) / static_cast<Real>(counts_.size());
  return lo_ + width * (static_cast<Real>(i) + 0.5);
}

Real Histogram::bin_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<Real>(counts_.at(i)) / static_cast<Real>(total_);
}

}  // namespace rebooting::core
