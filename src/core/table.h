// Aligned console tables and CSV export for the benchmark harnesses. Every
// bench binary prints the rows/series of the paper figure it regenerates; a
// shared formatter keeps that output uniform and machine-parsable.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

/// A cell is text, an integer, or a real (printed with `precision` digits).
using Cell = std::variant<std::string, std::int64_t, Real>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int precision = 4);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Renders with aligned columns and a header rule.
  std::string to_string() const;

  /// Renders as CSV (RFC-ish: cells containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Renders as a JSON array of row objects keyed by header. Numeric cells
  /// stay numbers (full precision, not the console `precision`), so bench
  /// binaries can emit machine-readable rows for trajectory tracking.
  std::string to_json() const;

  void print(std::ostream& os) const;

 private:
  std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

/// Prints a section banner used between the sub-experiments of one bench.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace rebooting::core
