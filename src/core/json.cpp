#include "core/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace rebooting::core {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(Real v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<Real>::max_digits10, v);
  return buf;
}

std::string json_number(std::int64_t v) { return std::to_string(v); }

bool JsonValue::boolean() const {
  if (type_ != Type::kBool) throw std::runtime_error("JsonValue: not a bool");
  return bool_;
}

Real JsonValue::number() const {
  if (type_ != Type::kNumber)
    throw std::runtime_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::string() const {
  if (type_ != Type::kString)
    throw std::runtime_error("JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  if (type_ != Type::kArray) throw std::runtime_error("JsonValue: not an array");
  return array_;
}

const JsonValue::Members& JsonValue::object() const {
  if (type_ != Type::kObject)
    throw std::runtime_error("JsonValue: not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [k, v] : object())
    if (k == key) return v;
  throw std::out_of_range("JsonValue: no member '" + key + "'");
}

bool JsonValue::contains(const std::string& key) const {
  for (const auto& [k, v] : object())
    if (k == key) return true;
  return false;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(Real n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(Members o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(o);
  return v;
}

namespace {

void dump_into(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull: out += "null"; break;
    case JsonValue::Type::kBool: out += v.boolean() ? "true" : "false"; break;
    case JsonValue::Type::kNumber: out += json_number(v.number()); break;
    case JsonValue::Type::kString: out += json_quote(v.string()); break;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : v.array()) {
        if (!first) out += ',';
        first = false;
        dump_into(item, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.object()) {
        if (!first) out += ',';
        first = false;
        out += json_quote(key);
        out += ':';
        dump_into(value, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string json_dump(const JsonValue& v) {
  std::string out;
  dump_into(v, out);
  return out;
}

namespace {

/// Recursive-descent RFC 8259 reader over a string_view cursor. Depth-capped
/// so a pathological document fails cleanly instead of overflowing the stack.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    skip_ws();
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n':
        return consume_literal("null") ? std::optional(JsonValue::make_null())
                                       : std::nullopt;
      case 't':
        return consume_literal("true")
                   ? std::optional(JsonValue::make_bool(true))
                   : std::nullopt;
      case 'f':
        return consume_literal("false")
                   ? std::optional(JsonValue::make_bool(false))
                   : std::nullopt;
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue::make_string(std::move(*s));
      }
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return std::nullopt;
          }
          // UTF-8 encode the BMP code point (the writer only emits \u00xx
          // control escapes; surrogate pairs are out of scope and rejected).
          if (code >= 0xD800 && code <= 0xDFFF) return std::nullopt;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      return std::nullopt;
    if (text_[pos_] == '0') ++pos_;
    else
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return std::nullopt;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return std::nullopt;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::optional<JsonValue> parse_array(int depth) {
    if (!consume('[')) return std::nullopt;
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return JsonValue::make_array(std::move(items));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object(int depth) {
    if (!consume('{')) return std::nullopt;
    JsonValue::Members members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return JsonValue::make_object(std::move(members));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return JsonReader(text).parse_document();
}

}  // namespace rebooting::core
