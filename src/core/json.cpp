#include "core/json.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace rebooting::core {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(Real v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<Real>::max_digits10, v);
  return buf;
}

std::string json_number(std::int64_t v) { return std::to_string(v); }

}  // namespace rebooting::core
