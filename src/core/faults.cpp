#include "core/faults.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/json.h"

namespace rebooting::core {

namespace {

Real probability_field(const JsonValue& v, const std::string& key) {
  const Real p = v.number();
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument("FaultPlan: '" + key +
                                "' must be a probability in [0, 1]");
  return p;
}

FaultSpec parse_spec(const JsonValue& obj, const std::string& kind_name) {
  FaultSpec spec;
  for (const auto& [key, value] : obj.object()) {
    if (key == "transient_probability") {
      spec.transient_probability = probability_field(value, key);
    } else if (key == "permanent_after") {
      const Real n = value.number();
      if (n < 0.0)
        throw std::invalid_argument("FaultPlan: 'permanent_after' must be >= 0");
      spec.permanent_after = static_cast<std::size_t>(n);
    } else if (key == "latency_spike_probability") {
      spec.latency_spike_probability = probability_field(value, key);
    } else if (key == "latency_spike_seconds") {
      const Real s = value.number();
      if (s < 0.0)
        throw std::invalid_argument(
            "FaultPlan: 'latency_spike_seconds' must be >= 0");
      spec.latency_spike_seconds = s;
    } else if (key == "corruption_probability") {
      spec.corruption_probability = probability_field(value, key);
    } else {
      throw std::invalid_argument("FaultPlan: unknown field '" + key +
                                  "' in spec for kind '" + kind_name + "'");
    }
  }
  return spec;
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kPermanent: return "permanent";
    case FaultKind::kLatencySpike: return "latency-spike";
    case FaultKind::kCorruption: return "corruption";
  }
  return "unknown";
}

bool FaultPlan::enabled() const {
  for (const auto& [kind, spec] : kinds)
    if (spec.enabled()) return true;
  return false;
}

const FaultSpec* FaultPlan::spec_for(AcceleratorKind kind) const {
  const auto it = kinds.find(kind);
  return it == kinds.end() ? nullptr : &it->second;
}

std::uint64_t FaultPlan::stream_index(AcceleratorKind kind, std::uint64_t seq,
                                      std::uint64_t attempt) {
  // Pack (seq, attempt, kind) into one counter: 3 bits of kind, 7 of
  // attempt, the rest seq. Collisions need seq >= 2^54 or attempt >= 128;
  // Rng::stream's dual-splitmix finalizer decorrelates neighbours anyway.
  return (seq << 10) | ((attempt & 0x7Full) << 3) |
         (static_cast<std::uint64_t>(kind) & 0x7ull);
}

FaultOutcome FaultPlan::decide(AcceleratorKind kind, std::uint64_t seq,
                               std::uint64_t attempt) const {
  const FaultSpec* spec = spec_for(kind);
  if (!spec || !spec->enabled()) return {};
  Rng rng = Rng::stream(seed, stream_index(kind, seq, attempt));
  // Fixed draw order, one uniform per fault class, so the verdict for a
  // given (seed, kind, seq, attempt) never depends on which probabilities
  // are zero.
  const Real u_transient = rng.uniform();
  const Real u_spike = rng.uniform();
  const Real u_corrupt = rng.uniform();
  if (u_transient < spec->transient_probability)
    return {FaultKind::kTransient, 0.0, "injected transient device failure"};
  if (u_spike < spec->latency_spike_probability)
    return {FaultKind::kLatencySpike, spec->latency_spike_seconds,
            "injected latency spike (" +
                std::to_string(spec->latency_spike_seconds) + " s)"};
  if (u_corrupt < spec->corruption_probability)
    return {FaultKind::kCorruption, 0.0,
            "injected result corruption; result discarded"};
  return {};
}

FaultPlan FaultPlan::parse(const std::string& json_text) {
  const auto doc = json_parse(json_text);
  if (!doc || !doc->is_object())
    throw std::invalid_argument("FaultPlan: not a JSON object");
  try {
    return parse_object(*doc);
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception& e) {
    // JsonValue accessor type mismatches (runtime_error) become the
    // documented invalid_argument.
    throw std::invalid_argument(std::string("FaultPlan: ") + e.what());
  }
}

FaultPlan FaultPlan::parse_object(const JsonValue& doc) {
  FaultPlan plan;
  for (const auto& [key, value] : doc.object()) {
    if (key == "seed") {
      const Real s = value.number();
      if (s < 0.0)
        throw std::invalid_argument("FaultPlan: 'seed' must be >= 0");
      plan.seed = static_cast<std::uint64_t>(s);
    } else if (key == "kinds") {
      for (const auto& [kind_name, spec_value] : value.object()) {
        const auto kind = kind_from_string(kind_name);
        if (!kind)
          throw std::invalid_argument("FaultPlan: unknown accelerator kind '" +
                                      kind_name + "'");
        if (!plan.kinds.emplace(*kind, parse_spec(spec_value, kind_name))
                 .second)
          throw std::invalid_argument("FaultPlan: duplicate kind '" +
                                      kind_name + "'");
      }
    } else {
      throw std::invalid_argument("FaultPlan: unknown field '" + key + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("FaultPlan: cannot read fault plan file '" +
                             path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

std::shared_ptr<const FaultPlan> FaultPlan::from_env() {
  static const std::shared_ptr<const FaultPlan> cached = [] {
    const char* path = std::getenv("REBOOTING_FAULTS");
    if (!path || !*path) return std::shared_ptr<const FaultPlan>();
    return std::shared_ptr<const FaultPlan>(
        std::make_shared<const FaultPlan>(load(path)));
  }();
  return cached;
}

FaultyAccelerator::FaultyAccelerator(std::shared_ptr<Accelerator> inner,
                                     std::shared_ptr<const FaultPlan> plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  if (!inner_)
    throw std::invalid_argument("FaultyAccelerator: null inner accelerator");
  kind_ = inner_->kind();
  if (plan_) {
    const FaultSpec* spec = plan_->spec_for(kind_);
    if (spec && spec->enabled()) spec_ = spec;
  }
}

std::string FaultyAccelerator::name() const {
  return spec_ ? "faulty(" + inner_->name() + ")" : inner_->name();
}

std::vector<std::string> FaultyAccelerator::stack_layers() const {
  auto layers = inner_->stack_layers();
  if (spec_)
    layers.insert(layers.begin(), "Fault-injection harness (deterministic)");
  return layers;
}

FaultOutcome FaultyAccelerator::on_attempt_armed(std::uint64_t seq,
                                                 std::uint64_t attempt) {
  const std::uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (spec_->permanent_after > 0 && call > spec_->permanent_after)
    return {FaultKind::kPermanent, 0.0,
            "injected permanent device failure (replica worn out after " +
                std::to_string(spec_->permanent_after) + " calls)"};
  return plan_->decide(kind_, seq, attempt);
}

AcceleratorFactory FaultyAccelerator::wrap(
    AcceleratorFactory inner, std::shared_ptr<const FaultPlan> plan) {
  if (!inner)
    throw std::invalid_argument("FaultyAccelerator::wrap: null factory");
  return [inner = std::move(inner),
          plan = std::move(plan)]() -> std::shared_ptr<Accelerator> {
    return std::make_shared<FaultyAccelerator>(inner(), plan);
  };
}

}  // namespace rebooting::core
