// Small dense linear algebra: row-major matrices with LU factorization
// (partial pivoting). Used for circuit capacitance-matrix solves in the
// oscillator engine and for small unitary checks in the quantum tests. Not a
// BLAS; sizes here are tens, not thousands.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

/// Dense row-major real matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, Real fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Real& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  Real operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<const Real> data() const { return data_; }

  Matrix operator*(const Matrix& other) const;
  std::vector<Real> operator*(std::span<const Real> v) const;

  /// Max absolute element difference; matrices must have equal shape.
  Real max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Real> data_;
};

/// LU factorization with partial pivoting of a square matrix, reusable for
/// many right-hand sides (the oscillator network factors its capacitance
/// matrix once per simulation and solves every step).
class LuFactorization {
 public:
  /// Factors `m` (must be square). Throws std::invalid_argument if singular
  /// to working precision.
  explicit LuFactorization(const Matrix& m);

  std::size_t size() const { return n_; }

  /// Solves A x = b in place: `b` enters as the RHS, leaves as the solution.
  void solve_in_place(std::span<Real> b) const;

  std::vector<Real> solve(std::span<const Real> b) const;

  /// A^-1 via n solves against identity columns.
  Matrix inverse() const;

 private:
  std::size_t n_ = 0;
  std::vector<Real> lu_;          // packed L\U
  std::vector<std::size_t> piv_;  // row permutation
};

}  // namespace rebooting::core
