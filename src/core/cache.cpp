#include "core/cache.h"

#include <cstdlib>
#include <cstring>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace rebooting::core {

// ------------------------------------------------------------- kill switch

namespace {

bool cache_env_default() {
  const char* env = std::getenv("REBOOTING_CACHE");
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "false" || v == "OFF" ||
           v == "FALSE");
}

std::atomic<bool>& cache_flag() {
  static std::atomic<bool> flag{cache_env_default()};
  return flag;
}

}  // namespace

bool cache_enabled() { return cache_flag().load(std::memory_order_relaxed); }
void set_cache_enabled(bool on) {
  cache_flag().store(on, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- hashing

std::string HashKey128::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i & 7);
    const auto byte = static_cast<unsigned>((word >> shift) & 0xFF);
    out[2 * i] = kDigits[byte >> 4];
    out[2 * i + 1] = kDigits[byte & 0xF];
  }
  return out;
}

void HashWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void HashWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void HashWriter::real(Real v) {
  // Identify -0.0 with +0.0 — builders that compute angles can land on
  // either, and they denote the same rotation. Everything else (including
  // NaN payloads) hashes by exact bit pattern.
  if (v == Real{0}) v = Real{0};
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void HashWriter::str(std::string_view s) {
  u64(s.size());
  bytes_.append(s.data(), s.size());
}

namespace {

// splitmix64 — the mixer behind the xoshiro family (core/random.cpp seeds
// with it too). Two independently-keyed lanes absorb the same byte stream;
// a final cross-mix ties them together. The construction is fixed forever:
// test_cache.cpp pins digests of known inputs, so any change here is a
// deliberate, test-visible cache-format break.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t load_le64(const char* p, std::size_t n) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n; ++i)
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
            << (8 * i);
  return word;
}

}  // namespace

HashKey128 HashWriter::finish() const {
  std::uint64_t a = 0x243F6A8885A308D3ull;  // pi digits — nothing-up-my-sleeve
  std::uint64_t b = 0x13198A2E03707344ull;
  const char* p = bytes_.data();
  std::size_t remaining = bytes_.size();
  while (remaining > 0) {
    const std::size_t n = remaining < 8 ? remaining : 8;
    const std::uint64_t word = load_le64(p, n);
    a = splitmix64(a ^ word);
    b = splitmix64(b + (word ^ 0xA5A5A5A5A5A5A5A5ull));
    p += n;
    remaining -= n;
  }
  // Fold the total length so trailing zero bytes can't alias, then cross-mix.
  a = splitmix64(a ^ bytes_.size());
  b = splitmix64(b + bytes_.size());
  const std::uint64_t hi = splitmix64(a + (b << 1));
  const std::uint64_t lo = splitmix64(b ^ hi);
  return HashKey128{hi, lo};
}

// ---------------------------------------------------------------- registry

namespace {

struct Registry {
  std::mutex mutex;
  // Insertion-ordered so status bodies list caches deterministically.
  std::vector<std::pair<std::string, std::function<CacheStats()>>> entries;
};

// Leaky singleton: caches with static storage duration unregister during
// process teardown, which must not race static destruction order.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

void register_cache(const std::string& name, std::function<CacheStats()> fn) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (auto& [existing, existing_fn] : r.entries) {
    if (existing == name) {
      existing_fn = std::move(fn);
      return;
    }
  }
  r.entries.emplace_back(name, std::move(fn));
}

void unregister_cache(const std::string& name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::erase_if(r.entries,
                [&](const auto& entry) { return entry.first == name; });
}

std::vector<std::pair<std::string, CacheStats>> cache_stats_snapshot() {
  std::vector<std::pair<std::string, std::function<CacheStats()>>> fns;
  {
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    fns = r.entries;
  }
  std::vector<std::pair<std::string, CacheStats>> out;
  out.reserve(fns.size());
  // Snapshot functions run outside the registry lock — they take shard locks.
  for (auto& [name, fn] : fns) out.emplace_back(name, fn());
  return out;
}

// -------------------------------------------------------------- CacheCore

namespace detail {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  if (n < 2) return 1;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t per_shard(std::size_t total, std::size_t shards) {
  if (total == 0) return 0;
  const std::size_t each = total / shards;
  return each == 0 ? 1 : each;
}

}  // namespace

CacheCore::CacheCore(const CacheConfig& config)
    : config_(config),
      shard_count_(round_up_pow2(config.shards)),
      shard_entry_cap_(per_shard(config.max_entries, shard_count_)),
      shard_byte_cap_(per_shard(config.max_bytes, shard_count_)),
      hit_name_("cache." + config.name + ".hit"),
      miss_name_("cache." + config.name + ".miss"),
      insert_name_("cache." + config.name + ".insert"),
      evict_name_("cache." + config.name + ".evict"),
      expire_name_("cache." + config.name + ".expire") {}

CacheCore::~CacheCore() {
  if (registered_) unregister_cache(config_.name);
}

void CacheCore::register_stats(std::function<CacheStats()> live) {
  register_cache(config_.name, std::move(live));
  registered_ = true;
}

// Trace-instant names must be string literals: TELEM_TRACE_INSTANT stores
// the pointer, not a copy. The per-cache series go through telemetry::count,
// which copies.

void CacheCore::on_hit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("cache.hit");
  telemetry::count(hit_name_);
  TELEM_TRACE_INSTANT("cache.hit");
}

void CacheCore::on_miss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("cache.miss");
  telemetry::count(miss_name_);
  TELEM_TRACE_INSTANT("cache.miss");
}

void CacheCore::on_insert() {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("cache.insert");
  telemetry::count(insert_name_);
  TELEM_TRACE_INSTANT("cache.insert");
}

void CacheCore::on_evict() {
  evictions_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("cache.evict");
  telemetry::count(evict_name_);
  TELEM_TRACE_INSTANT("cache.evict");
}

void CacheCore::on_expire() {
  expirations_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("cache.expire");
  telemetry::count(expire_name_);
  TELEM_TRACE_INSTANT("cache.expire");
}

void CacheCore::on_refuse() {
  refused_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("cache.refuse");
}

CacheStats CacheCore::counters() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.expirations = expirations_.load(std::memory_order_relaxed);
  s.refused = refused_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace detail

}  // namespace rebooting::core
