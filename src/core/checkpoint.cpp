#include "core/checkpoint.h"

#include <charconv>

#include "core/json.h"

namespace rebooting::core {

namespace {

JsonValue real_array(const std::vector<Real>& xs) {
  std::vector<JsonValue> out;
  out.reserve(xs.size());
  for (const Real x : xs) out.push_back(JsonValue::make_number(x));
  return JsonValue::make_array(std::move(out));
}

JsonValue u64_array(const std::vector<std::uint64_t>& xs) {
  std::vector<JsonValue> out;
  out.reserve(xs.size());
  for (const std::uint64_t x : xs)
    out.push_back(JsonValue::make_string(u64_to_string(x)));
  return JsonValue::make_array(std::move(out));
}

bool parse_real_array(const JsonValue& v, std::vector<Real>& out) {
  if (!v.is_array()) return false;
  out.clear();
  out.reserve(v.array().size());
  for (const JsonValue& x : v.array()) {
    if (x.type() != JsonValue::Type::kNumber) return false;
    out.push_back(x.number());
  }
  return true;
}

bool parse_u64_array(const JsonValue& v, std::vector<std::uint64_t>& out) {
  if (!v.is_array()) return false;
  out.clear();
  out.reserve(v.array().size());
  for (const JsonValue& x : v.array()) {
    if (x.type() != JsonValue::Type::kString) return false;
    const auto parsed = u64_from_string(x.string());
    if (!parsed) return false;
    out.push_back(*parsed);
  }
  return true;
}

bool parse_u64_field(const JsonValue& obj, const std::string& key,
                     std::uint64_t& out) {
  if (!obj.contains(key)) return false;
  const JsonValue& v = obj.at(key);
  if (v.type() != JsonValue::Type::kString) return false;
  const auto parsed = u64_from_string(v.string());
  if (!parsed) return false;
  out = *parsed;
  return true;
}

}  // namespace

std::string u64_to_string(std::uint64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, end);
}

std::optional<std::uint64_t> u64_from_string(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::string bytes_to_hex(const std::vector<unsigned char>& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * bytes.size());
  for (const unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

std::optional<std::vector<unsigned char>> bytes_from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
    return -1;
  };
  std::vector<unsigned char> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<unsigned char>((hi << 4) | lo));
  }
  return out;
}

JsonValue Checkpoint::to_json() const {
  JsonValue::Members rng_members;
  std::vector<JsonValue> lanes;
  lanes.reserve(4);
  for (const std::uint64_t lane : rng.lanes)
    lanes.push_back(JsonValue::make_string(u64_to_string(lane)));
  rng_members.emplace_back("lanes", JsonValue::make_array(std::move(lanes)));
  rng_members.emplace_back("cached_normal",
                           JsonValue::make_number(rng.cached_normal));
  rng_members.emplace_back("has_cached_normal",
                           JsonValue::make_bool(rng.has_cached_normal));

  JsonValue::Members members;
  members.emplace_back("tag", JsonValue::make_string(tag));
  members.emplace_back("step", JsonValue::make_string(u64_to_string(step)));
  members.emplace_back("t", JsonValue::make_number(t));
  members.emplace_back("state", real_array(state));
  members.emplace_back("aux", real_array(aux));
  members.emplace_back("counters", u64_array(counters));
  members.emplace_back("flags", JsonValue::make_string(bytes_to_hex(flags)));
  members.emplace_back("rng", JsonValue::make_object(std::move(rng_members)));
  return JsonValue::make_object(std::move(members));
}

std::string Checkpoint::json_dump() const { return core::json_dump(to_json()); }

std::optional<Checkpoint> Checkpoint::from_value(const JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  Checkpoint ckpt;
  if (!v.contains("tag") || v.at("tag").type() != JsonValue::Type::kString)
    return std::nullopt;
  ckpt.tag = v.at("tag").string();
  if (!parse_u64_field(v, "step", ckpt.step)) return std::nullopt;
  if (!v.contains("t") || v.at("t").type() != JsonValue::Type::kNumber)
    return std::nullopt;
  ckpt.t = v.at("t").number();
  if (!v.contains("state") || !parse_real_array(v.at("state"), ckpt.state))
    return std::nullopt;
  if (!v.contains("aux") || !parse_real_array(v.at("aux"), ckpt.aux))
    return std::nullopt;
  if (!v.contains("counters") ||
      !parse_u64_array(v.at("counters"), ckpt.counters))
    return std::nullopt;
  if (!v.contains("flags") ||
      v.at("flags").type() != JsonValue::Type::kString)
    return std::nullopt;
  auto flags = bytes_from_hex(v.at("flags").string());
  if (!flags) return std::nullopt;
  ckpt.flags = std::move(*flags);

  if (!v.contains("rng") || !v.at("rng").is_object()) return std::nullopt;
  const JsonValue& rng = v.at("rng");
  if (!rng.contains("lanes") || !rng.at("lanes").is_array() ||
      rng.at("lanes").array().size() != 4)
    return std::nullopt;
  for (std::size_t i = 0; i < 4; ++i) {
    const JsonValue& lane = rng.at("lanes").array()[i];
    if (lane.type() != JsonValue::Type::kString) return std::nullopt;
    const auto parsed = u64_from_string(lane.string());
    if (!parsed) return std::nullopt;
    ckpt.rng.lanes[i] = *parsed;
  }
  if (!rng.contains("cached_normal") ||
      rng.at("cached_normal").type() != JsonValue::Type::kNumber)
    return std::nullopt;
  ckpt.rng.cached_normal = rng.at("cached_normal").number();
  if (!rng.contains("has_cached_normal") ||
      rng.at("has_cached_normal").type() != JsonValue::Type::kBool)
    return std::nullopt;
  ckpt.rng.has_cached_normal = rng.at("has_cached_normal").boolean();
  return ckpt;
}

std::optional<Checkpoint> Checkpoint::from_json(std::string_view text) {
  const auto parsed = json_parse(text);
  if (!parsed) return std::nullopt;
  return from_value(*parsed);
}

}  // namespace rebooting::core
