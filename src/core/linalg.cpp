#include "core/linalg.h"

#include <cmath>
#include <stdexcept>

namespace rebooting::core {

Matrix::Matrix(std::size_t rows, std::size_t cols, Real fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const Real a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j)
        out(i, j) += a * other(k, j);
    }
  return out;
}

std::vector<Real> Matrix::operator*(std::span<const Real> v) const {
  if (v.size() != cols_)
    throw std::invalid_argument("Matrix::operator*: vector size mismatch");
  std::vector<Real> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out[i] += (*this)(i, j) * v[j];
  return out;
}

Real Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  Real m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

LuFactorization::LuFactorization(const Matrix& m)
    : n_(m.rows()), lu_(m.data().begin(), m.data().end()), piv_(m.rows()) {
  if (m.rows() != m.cols())
    throw std::invalid_argument("LuFactorization: matrix must be square");
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;

  for (std::size_t col = 0; col < n_; ++col) {
    // Partial pivot.
    std::size_t best = col;
    Real best_abs = std::abs(lu_[col * n_ + col]);
    for (std::size_t r = col + 1; r < n_; ++r) {
      const Real a = std::abs(lu_[r * n_ + col]);
      if (a > best_abs) {
        best = r;
        best_abs = a;
      }
    }
    if (best_abs < 1e-300)
      throw std::invalid_argument("LuFactorization: singular matrix");
    if (best != col) {
      for (std::size_t j = 0; j < n_; ++j)
        std::swap(lu_[col * n_ + j], lu_[best * n_ + j]);
      std::swap(piv_[col], piv_[best]);
    }
    const Real pivot = lu_[col * n_ + col];
    for (std::size_t r = col + 1; r < n_; ++r) {
      const Real factor = lu_[r * n_ + col] / pivot;
      lu_[r * n_ + col] = factor;
      for (std::size_t j = col + 1; j < n_; ++j)
        lu_[r * n_ + j] -= factor * lu_[col * n_ + j];
    }
  }
}

void LuFactorization::solve_in_place(std::span<Real> b) const {
  if (b.size() != n_)
    throw std::invalid_argument("LuFactorization::solve: size mismatch");
  // Apply permutation.
  std::vector<Real> x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
  // Forward substitution (unit lower triangle).
  for (std::size_t i = 1; i < n_; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_[i * n_ + j] * x[j];
  // Back substitution.
  for (std::size_t i = n_; i-- > 0;) {
    for (std::size_t j = i + 1; j < n_; ++j) x[i] -= lu_[i * n_ + j] * x[j];
    x[i] /= lu_[i * n_ + i];
  }
  for (std::size_t i = 0; i < n_; ++i) b[i] = x[i];
}

std::vector<Real> LuFactorization::solve(std::span<const Real> b) const {
  std::vector<Real> x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

Matrix LuFactorization::inverse() const {
  Matrix inv(n_, n_);
  std::vector<Real> col(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    std::fill(col.begin(), col.end(), 0.0);
    col[j] = 1.0;
    solve_in_place(col);
    for (std::size_t i = 0; i < n_; ++i) inv(i, j) = col[i];
  }
  return inv;
}

}  // namespace rebooting::core
