// Descriptive statistics and least-squares fitting used by the benchmark
// harnesses: the Fig. 5 reproduction fits an lk-norm exponent, the SAT
// scaling study reports medians and percentiles, and the RBM study reports
// mean +/- stderr across repetitions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

Real mean(std::span<const Real> xs);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
Real variance(std::span<const Real> xs);

Real stddev(std::span<const Real> xs);

/// Standard error of the mean.
Real stderr_mean(std::span<const Real> xs);

/// p in [0, 1]; linear interpolation between order statistics. The input is
/// copied and sorted internally.
Real percentile(std::span<const Real> xs, Real p);

Real median(std::span<const Real> xs);

Real min_value(std::span<const Real> xs);
Real max_value(std::span<const Real> xs);

/// Result of an ordinary least-squares line fit y ~ slope*x + intercept.
struct LineFit {
  Real slope = 0.0;
  Real intercept = 0.0;
  /// Coefficient of determination.
  Real r_squared = 0.0;
};

/// Fits a line by OLS. Requires xs.size() == ys.size() >= 2 and non-constant
/// xs; throws std::invalid_argument otherwise.
LineFit fit_line(std::span<const Real> xs, std::span<const Real> ys);

/// Fits y = a * x^k through log-log linear regression over the points with
/// x > 0 and y > 0 (others are skipped). Returns {k, a, r^2 of the log fit}.
/// This is how the Fig. 5 lk-norm exponents are extracted from the XOR
/// readout curves.
struct PowerLawFit {
  Real exponent = 0.0;
  Real amplitude = 0.0;
  Real r_squared = 0.0;
  std::size_t points_used = 0;
};

PowerLawFit fit_power_law(std::span<const Real> xs, std::span<const Real> ys);

/// Fits y = a * exp(b * x) through log-linear regression over points with
/// y > 0. Used to characterise solver-scaling curves (b > 0 means the
/// measured cost grows exponentially in x).
struct ExponentialFit {
  Real rate = 0.0;       ///< b
  Real amplitude = 0.0;  ///< a
  Real r_squared = 0.0;
  std::size_t points_used = 0;
};

ExponentialFit fit_exponential(std::span<const Real> xs,
                               std::span<const Real> ys);

/// Pearson correlation coefficient; returns 0 when either side is constant.
Real correlation(std::span<const Real> xs, std::span<const Real> ys);

/// Online accumulator (Welford) for streaming mean/variance, used inside the
/// simulation loops where storing every sample would be wasteful.
class RunningStats {
 public:
  void add(Real x);
  std::size_t count() const { return n_; }
  Real mean() const { return mean_; }
  Real variance() const;  ///< unbiased; 0 for n < 2
  Real stddev() const;
  Real min() const { return min_; }
  Real max() const { return max_; }

 private:
  std::size_t n_ = 0;
  Real mean_ = 0.0;
  Real m2_ = 0.0;
  Real min_ = 0.0;
  Real max_ = 0.0;
};

/// Histogram with fixed-width bins over [lo, hi); samples outside the range
/// are clamped into the edge bins. Used for the spin-glass avalanche-size
/// distributions (E8).
class Histogram {
 public:
  Histogram(Real lo, Real hi, std::size_t bins);

  void add(Real x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Center of bin i.
  Real bin_center(std::size_t i) const;
  /// Fraction of all samples in bin i (0 if empty histogram).
  Real bin_fraction(std::size_t i) const;

 private:
  Real lo_;
  Real hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rebooting::core
