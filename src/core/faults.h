// Deterministic fault injection for the heterogeneous runtime.
//
// The paper's post-CMOS substrates are inherently noisy: Sec. III's VO2
// oscillators drift with device variation and Sec. IV's memcomputing
// dynamics are explicitly stochastic. A production host (ROADMAP north star)
// must therefore assume accelerator calls *fail* — transiently, permanently,
// slowly, or wrongly — and the only way to test that resilience honestly is
// to inject those failures on demand, reproducibly.
//
// Design:
//
//   FaultSpec          per-AcceleratorKind fault rates (transient failure,
//                      permanent wear-out after N calls, latency spikes,
//                      result corruption)
//   FaultPlan          a seed plus one FaultSpec per kind. The verdict for
//                      one execution attempt is drawn from
//                      core::Rng::stream(seed, f(kind, job_seq, attempt)) —
//                      counter-based, so the SAME (job, attempt) reaches the
//                      SAME verdict on any replica, any thread count, any
//                      run. Loadable from JSON (core::json_parse) and from
//                      the REBOOTING_FAULTS=<plan.json> environment variable.
//   FaultyAccelerator  a decorator wrapping any core::Accelerator. It is
//                      factory-composable (wrap()), so scheduler worker-pool
//                      replicas each get their own decorator instance with an
//                      independent wear counter while sharing the plan's
//                      counter-keyed verdict stream.
//
// Cost discipline (mirrors telemetry): with no plan — or a plan with no
// enabled spec for the wrapped kind — on_attempt() is a pointer load and a
// branch, gated below 2 ns/call by bench/fault_overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/accelerator.h"
#include "core/random.h"
#include "core/types.h"

namespace rebooting::core {

class JsonValue;

/// What the injector did to one execution attempt.
enum class FaultKind {
  kNone,          ///< the attempt proceeds untouched
  kTransient,     ///< the attempt fails without running (device glitch)
  kPermanent,     ///< this replica is worn out; every call fails from now on
  kLatencySpike,  ///< the attempt runs, but only after an injected stall
  kCorruption,    ///< the attempt runs, but its result must be discarded
};

std::string to_string(FaultKind kind);

/// Fault rates for one accelerator kind. All probabilities are per execution
/// attempt, in [0, 1].
struct FaultSpec {
  Real transient_probability = 0.0;
  /// After this many calls a replica fails permanently (0 = never). Wear is
  /// per decorator instance: each worker-pool replica ages independently.
  std::size_t permanent_after = 0;
  Real latency_spike_probability = 0.0;
  Real latency_spike_seconds = 0.0;
  Real corruption_probability = 0.0;

  bool enabled() const {
    return transient_probability > 0.0 || permanent_after > 0 ||
           latency_spike_probability > 0.0 || corruption_probability > 0.0;
  }
};

/// The verdict for one attempt, plus what to tell the fault log.
struct FaultOutcome {
  FaultKind kind = FaultKind::kNone;
  Real latency_seconds = 0.0;  ///< stall to inject for kLatencySpike
  std::string description;     ///< one fault-log line; empty for kNone
};

/// A seeded, per-kind fault schedule. Copyable value type; the scheduler
/// shares one immutable plan across all replicas via shared_ptr<const>.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::map<AcceleratorKind, FaultSpec> kinds;

  bool enabled() const;
  /// The spec for `kind`, or nullptr when the plan does not cover it.
  const FaultSpec* spec_for(AcceleratorKind kind) const;

  /// The stochastic verdict for execution attempt `attempt` (1-based) of the
  /// job with scheduler submission sequence `seq` on an accelerator of
  /// `kind`. Keyed only by (seed, kind, seq, attempt): every replica, thread
  /// count, and run reaches the same verdict. Permanent wear-out is NOT
  /// decided here — it is per-replica state owned by FaultyAccelerator.
  FaultOutcome decide(AcceleratorKind kind, std::uint64_t seq,
                      std::uint64_t attempt) const;

  /// Strict parse of the JSON schema documented in README ("Fault injection
  /// & resilience"); throws std::invalid_argument naming the offending key.
  static FaultPlan parse(const std::string& json_text);
  /// parse() of the file's contents; throws std::runtime_error when the file
  /// cannot be read.
  static FaultPlan load(const std::string& path);
  /// The plan named by REBOOTING_FAULTS=<plan.json>, loaded once per process
  /// and cached; nullptr when the variable is unset or empty. Throws (once,
  /// then rethrows the cached error as best effort: fail fast in CI) when
  /// the file is unreadable or invalid.
  static std::shared_ptr<const FaultPlan> from_env();

 private:
  static FaultPlan parse_object(const JsonValue& doc);
  static std::uint64_t stream_index(AcceleratorKind kind, std::uint64_t seq,
                                    std::uint64_t attempt);
};

/// Decorator injecting the plan's faults in front of any accelerator. The
/// scheduler detects it on its worker replicas, consults on_attempt() around
/// each payload execution, and hands the payload the *inner* accelerator so
/// typed downcasts (quantum::QuantumAccelerator&, ...) still work.
class FaultyAccelerator final : public Accelerator {
 public:
  /// `plan` may be null: a null (or non-covering) plan makes the decorator a
  /// pure passthrough whose on_attempt() is a load + branch.
  FaultyAccelerator(std::shared_ptr<Accelerator> inner,
                    std::shared_ptr<const FaultPlan> plan);

  std::string name() const override;
  AcceleratorKind kind() const override { return kind_; }
  std::vector<std::string> stack_layers() const override;

  Accelerator& inner() { return *inner_; }
  const Accelerator& inner() const { return *inner_; }
  const FaultPlan* plan() const { return plan_.get(); }

  /// Calls that have reached this replica's injector (enabled specs only).
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

  /// The verdict for one execution attempt. Ages the replica's wear counter,
  /// reports kPermanent once `permanent_after` is exceeded, and otherwise
  /// defers to FaultPlan::decide. Thread-safe. The disabled check is inline
  /// so a passthrough decorator costs one load + branch (the bench gate).
  FaultOutcome on_attempt(std::uint64_t seq, std::uint64_t attempt) {
    if (!spec_) return {};
    return on_attempt_armed(seq, attempt);
  }

  /// Wraps a factory so every replica it builds carries its own decorator
  /// (independent wear counters) sharing one immutable plan.
  static AcceleratorFactory wrap(AcceleratorFactory inner,
                                 std::shared_ptr<const FaultPlan> plan);

 private:
  FaultOutcome on_attempt_armed(std::uint64_t seq, std::uint64_t attempt);

  std::shared_ptr<Accelerator> inner_;
  std::shared_ptr<const FaultPlan> plan_;
  AcceleratorKind kind_;
  const FaultSpec* spec_ = nullptr;  ///< cached; null = injector disabled
  std::atomic<std::uint64_t> calls_{0};
};

}  // namespace rebooting::core
