#include "core/ensemble.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace rebooting::core {

namespace {

using Clock = std::chrono::steady_clock;

Real seconds_since(Clock::time_point start) {
  return std::chrono::duration<Real>(Clock::now() - start).count();
}

}  // namespace

EnsembleStats run_ensemble(std::size_t count, const EnsembleOptions& opts,
                           const EnsembleBody& body) {
  TELEM_SPAN("ensemble.run");
  TELEM_TRACE_SCOPE("ensemble.run");
  EnsembleStats stats;
  if (count == 0) return stats;

  std::size_t threads = opts.threads != 0
                            ? opts.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, count);
  stats.threads_used = threads;

  const bool telem = telemetry::Telemetry::enabled();
  const auto start = Clock::now();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> stop{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    // One arena per worker for the whole run: trajectory bodies carve their
    // state from it under a Scope, so iteration k reuses iteration k-1's
    // blocks instead of allocating.
    Workspace ws;
    // stop is checked BEFORE claiming, never after: once fetch_add hands out
    // an index it always executes. Claims are monotone, so a stop triggered
    // by index w implies every i < w was claimed earlier and runs to
    // completion — the determinism guarantee in the header depends on this
    // ordering.
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      const auto traj_start = Clock::now();
      bool keep_going = true;
      try {
        // One claim/run slice per trajectory, tagged with its index, so the
        // exported timeline shows which worker ran which replica when.
        TELEM_TRACE_SCOPE_ID("ensemble.trajectory", i);
        keep_going = body(i, ws);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t done =
          completed.fetch_add(1, std::memory_order_relaxed) + 1;
      TELEM_TRACE_COUNTER("ensemble.completed", done);
      if (telem)
        telemetry::Telemetry::instance().metrics().record(
            opts.telemetry_label + ".trajectory_seconds",
            seconds_since(traj_start));
      if (!keep_going) {
        stop.store(true, std::memory_order_relaxed);
        TELEM_TRACE_INSTANT("ensemble.early_stop");
        break;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);

  stats.trajectories = completed.load(std::memory_order_relaxed);
  stats.stopped_early =
      stop.load(std::memory_order_relaxed) && stats.trajectories < count;
  stats.wall_seconds = seconds_since(start);
  stats.trajectories_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<Real>(stats.trajectories) / stats.wall_seconds
          : 0.0;

  if (telem) {
    auto& metrics = telemetry::Telemetry::instance().metrics();
    metrics.add(opts.telemetry_label + ".trajectories",
                static_cast<Real>(stats.trajectories));
    metrics.set(opts.telemetry_label + ".threads",
                static_cast<Real>(stats.threads_used));
    metrics.set(opts.telemetry_label + ".trajectories_per_second",
                stats.trajectories_per_second);
    if (stats.stopped_early) metrics.add(opts.telemetry_label + ".early_stop");
  }
  return stats;
}

}  // namespace rebooting::core
