#include "core/ensemble.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/json.h"
#include "telemetry/telemetry.h"

namespace rebooting::core {

namespace {

using Clock = std::chrono::steady_clock;

Real seconds_since(Clock::time_point start) {
  return std::chrono::duration<Real>(Clock::now() - start).count();
}

/// Lock-free monotone minimum (std::atomic::fetch_min is C++26).
void fetch_min(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (value < cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool EnsembleCheckpoint::done() const {
  if (!initialized()) return false;
  const std::uint64_t limit =
      std::min<std::uint64_t>(stop_index, count == 0 ? 0 : count - 1);
  for (std::uint64_t i = 0; i <= limit && i < count; ++i)
    if (!finished[i]) return false;
  return true;
}

std::size_t EnsembleCheckpoint::pending() const {
  if (!initialized()) return count;
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i)
    if (!finished[i] && i <= stop_index) ++n;
  return n;
}

std::string EnsembleCheckpoint::json_dump() const {
  std::vector<JsonValue> trajs;
  trajs.reserve(trajectories.size());
  for (const Checkpoint& t : trajectories) trajs.push_back(t.to_json());
  JsonValue::Members members;
  members.emplace_back("count", JsonValue::make_string(u64_to_string(count)));
  members.emplace_back("stop_index",
                       JsonValue::make_string(u64_to_string(stop_index)));
  members.emplace_back("started", JsonValue::make_string(bytes_to_hex(
                                      std::vector<unsigned char>(
                                          started.begin(), started.end()))));
  members.emplace_back("finished", JsonValue::make_string(bytes_to_hex(
                                       std::vector<unsigned char>(
                                           finished.begin(), finished.end()))));
  members.emplace_back("trajectories", JsonValue::make_array(std::move(trajs)));
  return core::json_dump(JsonValue::make_object(std::move(members)));
}

std::optional<EnsembleCheckpoint> EnsembleCheckpoint::from_json(
    std::string_view text) {
  const auto parsed = json_parse(text);
  if (!parsed || !parsed->is_object()) return std::nullopt;
  const JsonValue& v = *parsed;
  EnsembleCheckpoint ckpt;

  const auto u64_field = [&v](const char* key) -> std::optional<std::uint64_t> {
    if (!v.contains(key) || v.at(key).type() != JsonValue::Type::kString)
      return std::nullopt;
    return u64_from_string(v.at(key).string());
  };
  const auto count = u64_field("count");
  const auto stop = u64_field("stop_index");
  if (!count || !stop) return std::nullopt;
  ckpt.count = static_cast<std::size_t>(*count);
  ckpt.stop_index = *stop;

  const auto byte_field =
      [&v](const char* key) -> std::optional<std::vector<unsigned char>> {
    if (!v.contains(key) || v.at(key).type() != JsonValue::Type::kString)
      return std::nullopt;
    return bytes_from_hex(v.at(key).string());
  };
  auto started = byte_field("started");
  auto finished = byte_field("finished");
  if (!started || !finished) return std::nullopt;
  ckpt.started = std::move(*started);
  ckpt.finished = std::move(*finished);

  if (!v.contains("trajectories") || !v.at("trajectories").is_array())
    return std::nullopt;
  for (const JsonValue& t : v.at("trajectories").array()) {
    auto traj = Checkpoint::from_value(t);
    if (!traj) return std::nullopt;
    ckpt.trajectories.push_back(std::move(*traj));
  }
  if (ckpt.trajectories.size() != ckpt.count ||
      ckpt.started.size() != ckpt.count || ckpt.finished.size() != ckpt.count)
    return std::nullopt;
  return ckpt;
}

SlicedEnsembleResult run_ensemble_sliced(std::size_t count,
                                         const EnsembleOptions& opts,
                                         const SliceBudget& budget,
                                         EnsembleCheckpoint& ckpt,
                                         const SlicedEnsembleBody& body) {
  TELEM_SPAN("ensemble.run");
  TELEM_TRACE_SCOPE("ensemble.run");
  SlicedEnsembleResult out;
  if (count == 0) {
    out.done = true;
    return out;
  }
  if (!ckpt.initialized()) {
    ckpt.count = count;
    ckpt.trajectories.assign(count, Checkpoint{});
    ckpt.started.assign(count, 0);
    ckpt.finished.assign(count, 0);
  } else if (ckpt.count != count || ckpt.trajectories.size() != count ||
             ckpt.started.size() != count || ckpt.finished.size() != count) {
    throw std::invalid_argument(
        "run_ensemble_sliced: checkpoint does not match ensemble size");
  }

  // The work list for this invocation: unfinished trajectories at or below
  // the stop line, in ascending index order. Claims hand out positions in
  // this list from an atomic counter, so the in-order-claim determinism
  // argument of the unsliced runner carries over verbatim.
  std::vector<std::size_t> work;
  work.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    if (!ckpt.finished[i] && i <= ckpt.stop_index) work.push_back(i);
  if (work.empty()) {
    out.done = ckpt.done();
    return out;
  }

  std::size_t threads = opts.threads != 0
                            ? opts.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, work.size());
  out.stats.threads_used = threads;

  const bool telem = telemetry::Telemetry::enabled();
  const auto start = Clock::now();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> slices{0};
  std::atomic<std::uint64_t> stop_at{ckpt.stop_index};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    // One arena per worker for the whole invocation: slice bodies carve
    // their scratch from it under a Scope, so slice k reuses slice k-1's
    // blocks instead of allocating.
    Workspace ws;
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= work.size()) break;
      const std::size_t i = work[k];
      // A stop that landed below this index parks the trajectory where its
      // checkpoint stands; claims are monotone, so every index at or below
      // the stopper was claimed earlier and is driven normally.
      if (static_cast<std::uint64_t>(i) > stop_at.load(std::memory_order_relaxed))
        continue;
      const auto traj_start = Clock::now();
      SliceStatus status;
      try {
        // One claim/run slice per trajectory, tagged with its index, so the
        // exported timeline shows which worker ran which replica when.
        TELEM_TRACE_SCOPE_ID("ensemble.trajectory", i);
        ckpt.started[i] = 1;
        status = body(i, ckpt.trajectories[i], budget, ws);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      slices.fetch_add(1, std::memory_order_relaxed);
      if (status.done) {
        ckpt.finished[i] = 1;
        const std::size_t done =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        TELEM_TRACE_COUNTER("ensemble.completed", done);
      }
      if (telem)
        telemetry::Telemetry::instance().metrics().record(
            opts.telemetry_label + ".trajectory_seconds",
            seconds_since(traj_start));
      if (status.request_stop) {
        fetch_min(stop_at, static_cast<std::uint64_t>(i));
        TELEM_TRACE_INSTANT("ensemble.early_stop");
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  ckpt.stop_index = stop_at.load(std::memory_order_relaxed);

  if (first_error) std::rethrow_exception(first_error);

  out.slices = slices.load(std::memory_order_relaxed);
  out.done = ckpt.done();
  out.stats.trajectories = completed.load(std::memory_order_relaxed);
  out.stats.stopped_early = ckpt.stop_index != EnsembleCheckpoint::kNoStop &&
                            out.stats.trajectories < count;
  out.stats.wall_seconds = seconds_since(start);
  out.stats.trajectories_per_second =
      out.stats.wall_seconds > 0.0
          ? static_cast<Real>(out.stats.trajectories) / out.stats.wall_seconds
          : 0.0;

  if (telem) {
    auto& metrics = telemetry::Telemetry::instance().metrics();
    metrics.add(opts.telemetry_label + ".trajectories",
                static_cast<Real>(out.stats.trajectories));
    metrics.add(opts.telemetry_label + ".slices",
                static_cast<Real>(out.slices));
    metrics.set(opts.telemetry_label + ".threads",
                static_cast<Real>(out.stats.threads_used));
    metrics.set(opts.telemetry_label + ".trajectories_per_second",
                out.stats.trajectories_per_second);
    if (out.stats.stopped_early)
      metrics.add(opts.telemetry_label + ".early_stop");
  }
  return out;
}

EnsembleStats run_ensemble(std::size_t count, const EnsembleOptions& opts,
                           const EnsembleBody& body) {
  // The classic API is one unlimited slice per trajectory: the body runs to
  // completion, its "keep going" return maps onto the stop request, and the
  // per-trajectory checkpoints stay empty (state lives in the caller's
  // slots, as before).
  EnsembleCheckpoint ckpt;
  const auto adapter = [&body](std::size_t index, Checkpoint&,
                               const SliceBudget&, Workspace& ws) {
    SliceStatus status;
    status.done = true;
    status.request_stop = !body(index, ws);
    return status;
  };
  return run_ensemble_sliced(count, opts, SliceBudget{}, ckpt, adapter).stats;
}

}  // namespace rebooting::core
