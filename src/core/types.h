// Core scalar types and numeric constants shared by every engine in the
// workbench. All physical simulation is done in double precision; sizes and
// indices are std::size_t unless a domain type (qubit index, pixel coord)
// says otherwise.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace rebooting::core {

using Real = double;
using Complex = std::complex<Real>;

inline constexpr Real kPi = 3.14159265358979323846;
inline constexpr Real kTwoPi = 2.0 * kPi;

/// Boltzmann constant [J/K] — used by the annealer temperature schedules and
/// thermal-noise amplitudes in the device models.
inline constexpr Real kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr Real kElementaryCharge = 1.602176634e-19;

/// Relative tolerance suitable for comparing quantities accumulated over a
/// few thousand floating-point operations.
inline constexpr Real kTightTol = 1e-9;

/// Looser tolerance for quantities produced by adaptive ODE integration.
inline constexpr Real kSimTol = 1e-6;

}  // namespace rebooting::core
