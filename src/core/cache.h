// Content-addressed result caching — the "subgoal cache with canonical
// hashing" primitive the ROADMAP's serving story needs (item 4). Production
// traffic against rebootd is repetitive; the engines' hot paths (quantum
// compilation, DMM solves) are deterministic functions of their canonical
// inputs, so a second identical request should cost a hash lookup, not a
// recompile or a re-solve.
//
// Three pieces live here:
//
//   HashKey128 /       a stable 128-bit content hash over an explicit,
//   HashWriter         length-prefixed, little-endian byte encoding. The
//                      canonicalizers (quantum/canonical.h,
//                      memcomputing/canonical.h) feed their canonical forms
//                      through a HashWriter; equal canonical encodings — and
//                      only those — produce equal keys. The construction is
//                      pinned by a golden digest test (test_cache.cpp), so
//                      the hash is stable across runs, platforms, and
//                      compilers: cache keys may be logged, compared across
//                      shards, or persisted.
//
//   ShardedCache<V>    a sharded LRU cache with per-entry TTL and exact
//                      byte-capacity accounting. Values are
//                      shared_ptr<const V>: readers hold entries alive after
//                      eviction, so get() never returns a dangling pointer
//                      and writers never block on readers. Shard index comes
//                      from key.hi, the intra-shard bucket from key.lo —
//                      independent bits of the same 128-bit digest.
//
//   cache registry     every cache registers its stats under its config
//                      name; rebootd snapshots the registry into `status` /
//                      `metrics` bodies so `rebootctl top` can show fleet
//                      hit rates without new plumbing per cache.
//
// Telemetry: hits/misses/inserts/evictions count into both the global
// `cache.{hit,miss,insert,evict,expire}` metrics and the per-cache
// `cache.<name>.*` series, with trace instants on the global names.
//
// Kill switch: REBOOTING_CACHE=0 (or "off"/"false") disables every caching
// layer at process start; set_cache_enabled() flips it at runtime for tests.
// Disabled means the wired call sites take their original, pre-cache code
// paths verbatim — the null-plan discipline of core/faults.h, proven by the
// CacheGolden fingerprint tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"

namespace rebooting::core {

/// Process-wide cache switch (default on; REBOOTING_CACHE=0/off/false at
/// startup, or set_cache_enabled(false) at runtime, turns every wired layer
/// back into its original uncached code path).
bool cache_enabled();
void set_cache_enabled(bool on);

// --------------------------------------------------------------- hashing --

/// A 128-bit content hash. Value type; the all-zero key is valid (it is just
/// astronomically unlikely).
struct HashKey128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const HashKey128&) const = default;

  /// 32 lowercase hex digits, hi first — the loggable form.
  std::string to_hex() const;
};

/// std::unordered_map adapter; the digest bits are already uniform.
struct HashKey128Hash {
  std::size_t operator()(const HashKey128& k) const noexcept {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ull));
  }
};

/// Accumulates a canonical byte encoding and digests it. Every field write
/// is explicit about width and byte order (little-endian), and every
/// variable-length field is length-prefixed, so distinct field sequences can
/// never alias byte-wise ("ab","c" != "a","bc"). Reals are encoded by IEEE-754
/// bit pattern with -0.0 normalized to +0.0 — the only value identification
/// the encoding performs; NaNs of different payloads stay distinct on
/// purpose (aliasing distinct programs is the unsafe direction; missing a
/// hit is merely slow).
class HashWriter {
 public:
  HashWriter() { bytes_.reserve(256); }

  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void real(Real v);
  /// Length-prefixed byte string.
  void str(std::string_view s);

  std::size_t size() const { return bytes_.size(); }

  /// Digest of everything written so far (does not consume; a writer may be
  /// extended and re-finished).
  HashKey128 finish() const;

 private:
  std::string bytes_;
};

// --------------------------------------------------------------- statistics

/// Point-in-time counters of one cache. hits+misses = lookups; `expirations`
/// count TTL-lapsed entries found by get() (each also counts as a miss);
/// `refused` counts put()s whose value alone exceeded a shard's byte budget.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t refused = 0;
  std::size_t entries = 0;  ///< live entries right now
  std::size_t bytes = 0;    ///< accounted bytes right now
};

/// The process-wide cache registry: name -> stats snapshot function.
/// rebootd serves this through `status`/`metrics`; tests use it to assert
/// the wired layers actually count.
void register_cache(const std::string& name, std::function<CacheStats()> fn);
void unregister_cache(const std::string& name);
std::vector<std::pair<std::string, CacheStats>> cache_stats_snapshot();

// ------------------------------------------------------------------ cache --

struct CacheConfig {
  /// Shard count, rounded up to a power of two (>= 1). More shards, less
  /// lock contention; the per-shard capacity is the total divided evenly.
  std::size_t shards = 8;
  /// Total entry cap across shards (0 = unlimited).
  std::size_t max_entries = 4096;
  /// Total byte budget across shards (0 = unlimited). Accounting uses the
  /// caller-supplied per-entry size, exact under churn (test_cache.cpp).
  std::size_t max_bytes = std::size_t{64} << 20;
  /// Per-entry time-to-live (0 = entries never expire). Expiry is lazy: a
  /// lapsed entry is dropped by the get() that finds it.
  std::chrono::nanoseconds ttl{0};
  /// Registry / metric name ("quantum.compile", "dmm.solve", "sched.memo").
  std::string name = "cache";
};

namespace detail {

/// The non-template half of ShardedCache: atomic counters, pre-built metric
/// names, registry membership. Out-of-line (cache.cpp) so the header does
/// not pull in telemetry.
class CacheCore {
 public:
  explicit CacheCore(const CacheConfig& config);
  ~CacheCore();

  CacheCore(const CacheCore&) = delete;
  CacheCore& operator=(const CacheCore&) = delete;

  void on_hit();
  void on_miss();
  void on_insert();
  void on_evict();
  void on_expire();
  void on_refuse();

  /// Counters only; the owner fills entries/bytes.
  CacheStats counters() const;

  /// Wires `live` as this cache's registry snapshot function.
  void register_stats(std::function<CacheStats()> live);

  const CacheConfig& config() const { return config_; }
  std::size_t shard_count() const { return shard_count_; }
  std::size_t shard_entry_cap() const { return shard_entry_cap_; }
  std::size_t shard_byte_cap() const { return shard_byte_cap_; }

 private:
  CacheConfig config_;
  std::size_t shard_count_;
  std::size_t shard_entry_cap_;  ///< 0 = unlimited
  std::size_t shard_byte_cap_;   ///< 0 = unlimited
  bool registered_ = false;

  std::atomic<std::uint64_t> hits_{0}, misses_{0}, inserts_{0},
      evictions_{0}, expirations_{0}, refused_{0};
  std::string hit_name_, miss_name_, insert_name_, evict_name_, expire_name_;
};

}  // namespace detail

/// Sharded LRU + TTL cache keyed by HashKey128, storing shared_ptr<const V>.
/// Thread-safe; one mutex per shard, never held across user code. Eviction
/// is strict LRU per shard (get() refreshes recency). The cache participates
/// in the registry under config.name for its whole lifetime.
template <typename V>
class ShardedCache {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ShardedCache(CacheConfig config)
      : core_(config), shards_(core_.shard_count()) {
    core_.register_stats([this] { return stats(); });
  }

  /// The value for `key`, or nullptr on miss / TTL expiry. Counts exactly
  /// one hit or miss per call and refreshes LRU recency on hit.
  std::shared_ptr<const V> get(const HashKey128& key) {
    Shard& shard = shard_of(key);
    std::shared_ptr<const V> value;
    bool expired = false;
    {
      std::lock_guard lock(shard.mutex);
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        if (ttl_lapsed(*it->second)) {
          expired = true;
          shard.bytes -= it->second->bytes;
          shard.lru.erase(it->second);
          shard.index.erase(it);
        } else {
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
          value = it->second->value;
        }
      }
    }
    if (value) {
      core_.on_hit();
      return value;
    }
    if (expired) core_.on_expire();
    core_.on_miss();
    return nullptr;
  }

  /// Inserts (or replaces) `key` -> `value`, accounting `bytes` against the
  /// shard's budget and evicting LRU entries until entry and byte caps hold.
  /// A value that alone exceeds the shard byte budget is refused (counted),
  /// keeping one oversized outlier from wiping a whole shard.
  void put(const HashKey128& key, std::shared_ptr<const V> value,
           std::size_t bytes) {
    if (!value) return;
    const std::size_t byte_cap = core_.shard_byte_cap();
    if (byte_cap != 0 && bytes > byte_cap) {
      core_.on_refuse();
      return;
    }
    Shard& shard = shard_of(key);
    std::size_t evicted = 0;
    {
      std::lock_guard lock(shard.mutex);
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        // Replace in place; recency bumps like a write should.
        shard.bytes -= it->second->bytes;
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
      shard.lru.push_front(Entry{key, std::move(value), bytes,
                                 expiry_from_now()});
      shard.index[key] = shard.lru.begin();
      shard.bytes += bytes;
      const std::size_t entry_cap = core_.shard_entry_cap();
      while (shard.lru.size() > 1 &&
             ((entry_cap != 0 && shard.lru.size() > entry_cap) ||
              (byte_cap != 0 && shard.bytes > byte_cap))) {
        const Entry& tail = shard.lru.back();
        shard.bytes -= tail.bytes;
        shard.index.erase(tail.key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
    core_.on_insert();
    for (std::size_t i = 0; i < evicted; ++i) core_.on_evict();
  }

  /// Drops every entry (counters keep their history).
  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      shard.lru.clear();
      shard.index.clear();
      shard.bytes = 0;
    }
  }

  CacheStats stats() const {
    CacheStats s = core_.counters();
    for (const Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      s.entries += shard.lru.size();
      s.bytes += shard.bytes;
    }
    return s;
  }

  const CacheConfig& config() const { return core_.config(); }
  std::size_t shard_count() const { return core_.shard_count(); }

  /// Which shard a key lands in — exposed for the shard-independence
  /// property test.
  std::size_t shard_index(const HashKey128& key) const {
    return static_cast<std::size_t>(key.hi) & (core_.shard_count() - 1);
  }

 private:
  struct Entry {
    HashKey128 key;
    std::shared_ptr<const V> value;
    std::size_t bytes = 0;
    Clock::time_point expires_at{};  ///< meaningful only when ttl > 0
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<HashKey128, typename std::list<Entry>::iterator,
                       HashKey128Hash>
        index;
    std::size_t bytes = 0;
  };

  Shard& shard_of(const HashKey128& key) { return shards_[shard_index(key)]; }

  bool ttl_lapsed(const Entry& entry) const {
    return core_.config().ttl.count() > 0 && Clock::now() >= entry.expires_at;
  }

  Clock::time_point expiry_from_now() const {
    return core_.config().ttl.count() > 0 ? Clock::now() + core_.config().ttl
                                          : Clock::time_point{};
  }

  detail::CacheCore core_;
  std::vector<Shard> shards_;
};

}  // namespace rebooting::core
