#include "core/table.h"

#include <algorithm>

#include "core/json.h"
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rebooting::core {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::fixed << std::get<Real>(c);
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (std::size_t j = 0; j < headers_.size(); ++j) widths[j] = headers_[j].size();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    cells[i].reserve(headers_.size());
    for (std::size_t j = 0; j < headers_.size(); ++j) {
      cells[i].push_back(format_cell(rows_[i][j]));
      widths[j] = std::max(widths[j], cells[i][j].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      os << (j == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[j]))
         << row[j];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t j = 0; j < headers_.size(); ++j)
    os << std::string(widths[j] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : cells) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t j = 0; j < headers_.size(); ++j)
    os << (j ? "," : "") << escape(headers_[j]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j)
      os << (j ? "," : "") << escape(format_cell(row[j]));
    os << '\n';
  }
  return os.str();
}

std::string Table::to_json() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    os << (i ? "," : "") << '{';
    for (std::size_t j = 0; j < headers_.size(); ++j) {
      os << (j ? "," : "") << json_quote(headers_[j]) << ':';
      if (const auto* s = std::get_if<std::string>(&rows_[i][j]))
        os << json_quote(*s);
      else if (const auto* v = std::get_if<std::int64_t>(&rows_[i][j]))
        os << json_number(*v);
      else
        os << json_number(std::get<Real>(rows_[i][j]));
    }
    os << '}';
  }
  os << ']';
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace rebooting::core
