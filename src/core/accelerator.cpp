#include "core/accelerator.h"

#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace rebooting::core {

std::string to_string(AcceleratorKind kind) {
  switch (kind) {
    case AcceleratorKind::kClassicalCpu: return "classical-cpu";
    case AcceleratorKind::kQuantum: return "quantum";
    case AcceleratorKind::kOscillator: return "oscillator";
    case AcceleratorKind::kMemcomputing: return "memcomputing";
  }
  return "unknown";
}

std::optional<AcceleratorKind> kind_from_string(const std::string& name) {
  for (const auto kind :
       {AcceleratorKind::kClassicalCpu, AcceleratorKind::kQuantum,
        AcceleratorKind::kOscillator, AcceleratorKind::kMemcomputing})
    if (to_string(kind) == name) return kind;
  return std::nullopt;
}

std::string to_string(JobDisposition disposition) {
  switch (disposition) {
    case JobDisposition::kExecuted: return "executed";
    case JobDisposition::kRejected: return "rejected";
    case JobDisposition::kShed: return "shed";
    case JobDisposition::kFlushed: return "flushed";
    case JobDisposition::kDeadlineMissed: return "deadline-missed";
    case JobDisposition::kCancelled: return "cancelled";
  }
  return "unknown";
}

AcceleratorFactory CpuAccelerator::factory() {
  return [] { return std::make_shared<CpuAccelerator>(); };
}

void HostSystem::register_accelerator(std::shared_ptr<Accelerator> accel) {
  if (!accel) throw std::invalid_argument("register_accelerator: null");
  const auto kind = accel->kind();
  const auto it = accelerators_.find(kind);
  if (it != accelerators_.end())
    throw std::invalid_argument(
        "register_accelerator: duplicate kind '" + to_string(kind) +
        "' — already registered by accelerator '" + it->second->name() +
        "' (HostSystem holds one per kind; use sched::Scheduler pools for "
        "replicas)");
  accelerators_.emplace(kind, std::move(accel));
}

bool HostSystem::has(AcceleratorKind kind) const {
  return accelerators_.contains(kind);
}

Accelerator& HostSystem::accelerator(AcceleratorKind kind) {
  return *accelerators_.at(kind);
}

JobResult HostSystem::submit(const Job& job) {
  auto& accel = *accelerators_.at(job.kind);
  if (!job.payload) throw std::invalid_argument("submit: job has no payload");

  JobResult result;
  const auto start = std::chrono::steady_clock::now();
  {
    // Root span per job: engine spans opened inside the payload nest under it.
    TELEM_SPAN("host." + to_string(job.kind));
    result = job.payload();
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<Real>(end - start).count();

  accel.record_completion(result.wall_seconds);
  if (telemetry::Telemetry::enabled()) {
    auto& metrics = telemetry::Telemetry::instance().metrics();
    metrics.add("host.jobs");
    if (!result.ok) metrics.add("host.jobs_failed");
    metrics.record("host.job_wall_seconds", result.wall_seconds);
    for (const auto& [key, value] : result.metrics) metrics.add(key, value);
  }
  log_.push_back(JobRecord{job.name, accel.name(), job.kind, result});
  return result;
}

Real HostSystem::total_metric(const std::string& key) const {
  Real sum = 0.0;
  for (const auto& rec : log_) {
    const auto it = rec.result.metrics.find(key);
    if (it != rec.result.metrics.end()) sum += it->second;
  }
  return sum;
}

std::string HostSystem::describe() const {
  std::ostringstream os;
  os << "HostSystem with " << accelerators_.size() << " accelerator(s):\n";
  for (const auto& [kind, accel] : accelerators_) {
    os << "  [" << to_string(kind) << "] " << accel->name() << " — "
       << accel->jobs_completed() << " job(s), "
       << accel->busy_seconds() << " s busy\n";
    const auto layers = accel->stack_layers();
    for (std::size_t i = 0; i < layers.size(); ++i)
      os << "      L" << (layers.size() - i) << ": " << layers[i] << '\n';
  }
  if (telemetry::Telemetry::enabled()) {
    os << "\nTelemetry rollup (per-layer cost of the jobs above):\n"
       << telemetry::Telemetry::instance().report();
  }
  return os.str();
}

}  // namespace rebooting::core
