// Gate library and circuit IR — the instruction-level layers of Fig. 2.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.h"
#include "quantum/state.h"

namespace rebooting::quantum {

/// Gate vocabulary. The native set of the simulated device is
/// {RX, RY, RZ, CZ}; everything else is sugar the compiler lowers.
enum class GateKind {
  kI, kX, kY, kZ, kH, kS, kSdg, kT, kTdg,
  kRx, kRy, kRz, kPhase,   // parameterized single-qubit
  kCx, kCz, kSwap,         // two-qubit
  kCcx,                    // Toffoli (three-qubit)
  kMeasure,                // computational-basis measurement of one qubit
};

std::string to_string(GateKind kind);
bool is_parameterized(GateKind kind);
std::size_t qubit_count(GateKind kind);

/// 2x2 matrices for the single-qubit kinds (angle used when parameterized).
Gate2x2 gate_matrix(GateKind kind, core::Real angle = 0.0);

struct Operation {
  GateKind kind = GateKind::kI;
  std::vector<std::size_t> qubits;  ///< targets; controls first for kCx/kCcx
  core::Real angle = 0.0;

  std::string to_string() const;
};

/// A straight-line quantum circuit (measurements allowed anywhere; the
/// runtime samples at the end unless explicit measures are present).
class Circuit {
 public:
  explicit Circuit(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  const std::vector<Operation>& operations() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  Circuit& add(GateKind kind, std::vector<std::size_t> qubits,
               core::Real angle = 0.0);

  // Convenience builders.
  Circuit& i(std::size_t q) { return add(GateKind::kI, {q}); }
  Circuit& x(std::size_t q) { return add(GateKind::kX, {q}); }
  Circuit& y(std::size_t q) { return add(GateKind::kY, {q}); }
  Circuit& z(std::size_t q) { return add(GateKind::kZ, {q}); }
  Circuit& h(std::size_t q) { return add(GateKind::kH, {q}); }
  Circuit& s(std::size_t q) { return add(GateKind::kS, {q}); }
  Circuit& sdg(std::size_t q) { return add(GateKind::kSdg, {q}); }
  Circuit& t(std::size_t q) { return add(GateKind::kT, {q}); }
  Circuit& tdg(std::size_t q) { return add(GateKind::kTdg, {q}); }
  Circuit& rx(std::size_t q, core::Real a) { return add(GateKind::kRx, {q}, a); }
  Circuit& ry(std::size_t q, core::Real a) { return add(GateKind::kRy, {q}, a); }
  Circuit& rz(std::size_t q, core::Real a) { return add(GateKind::kRz, {q}, a); }
  Circuit& phase(std::size_t q, core::Real a) {
    return add(GateKind::kPhase, {q}, a);
  }
  Circuit& cx(std::size_t c, std::size_t t) { return add(GateKind::kCx, {c, t}); }
  Circuit& cz(std::size_t a, std::size_t b) { return add(GateKind::kCz, {a, b}); }
  Circuit& swap(std::size_t a, std::size_t b) {
    return add(GateKind::kSwap, {a, b});
  }
  Circuit& ccx(std::size_t c1, std::size_t c2, std::size_t t) {
    return add(GateKind::kCcx, {c1, c2, t});
  }
  Circuit& measure(std::size_t q) { return add(GateKind::kMeasure, {q}); }

  /// Appends all of `other`'s operations (qubit counts must match).
  Circuit& append(const Circuit& other);

  /// Number of two-or-more-qubit gates (the expensive ones on hardware).
  std::size_t multi_qubit_gates() const;

  /// Circuit depth: longest chain of operations sharing qubits.
  std::size_t depth() const;

  std::string to_string() const;

 private:
  std::size_t num_qubits_;
  std::vector<Operation> ops_;
};

/// Applies one operation (except kMeasure) to a state vector.
void apply_operation(StateVector& state, const Operation& op);

/// Runs all unitary operations of the circuit on |0..0> and returns the
/// final state (measurement ops are skipped). Convenience for tests and
/// algorithm code; the runtime layer adds shots and noise.
StateVector simulate(const Circuit& circuit);

}  // namespace rebooting::quantum
