// QISA — the quantum instruction set of the Fig. 2 stack ("a well-defined
// set of quantum instructions" executed by the microarchitecture).
//
// Text format, one instruction per line:
//   qubits 5
//   h q0
//   cz q0 q1
//   rx q2 1.5707963
//   measure q3
// '#' starts a comment. The assembler produces a Circuit; the disassembler
// round-trips. Each instruction carries a duration in device cycles used by
// the scheduler.
#pragma once

#include <string>

#include "quantum/circuit.h"

namespace rebooting::quantum {

/// Duration, in device cycles, the simulated microarchitecture charges for a
/// gate kind (single-qubit rotations 1, CZ 2, measurement 10 — typical
/// relative magnitudes for transmon stacks).
std::size_t instruction_cycles(GateKind kind);

/// Assembles QISA text into a circuit; throws std::runtime_error with a line
/// number on malformed input.
Circuit assemble(const std::string& text);

/// Disassembles a circuit back to QISA text (inverse of assemble).
std::string disassemble(const Circuit& circuit);

}  // namespace rebooting::quantum
