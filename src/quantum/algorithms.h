// Algorithm library — the top of the Fig. 2 stack, covering the paper's
// Sec. II-C application claims: Shor's factoring ("break any RSA-based
// encryption") and data-parallel search over a superposed dataset (the
// genome/DNA use case, realized as Grover substring matching).
//
// Oracles are black boxes, as in the standard algorithm statements: phase
// oracles are applied as diagonals and the modular-exponentiation unitary of
// Shor as the basis-state permutation |x>|y> -> |x>|a^x y mod N>. Everything
// else (superposition preparation, QFT, diffusion, measurement) is built
// gate-by-gate and runs through the full compiler/runtime stack.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/random.h"
#include "quantum/circuit.h"

namespace rebooting::quantum {

/// Gate-level quantum Fourier transform on qubits [0, n) (bit-reversed
/// convention folded in via final swaps).
Circuit qft_circuit(std::size_t n);
Circuit inverse_qft_circuit(std::size_t n);

/// ---- Grover search -----------------------------------------------------

using OraclePredicate = std::function<bool(std::uint64_t)>;

struct GroverResult {
  std::uint64_t found = 0;
  bool is_marked = false;
  std::size_t iterations = 0;
  core::Real success_probability = 0.0;  ///< total marked probability at end
  std::size_t oracle_calls = 0;
};

/// Optimal iteration count round(pi/4 sqrt(N/M)) (>= 1).
std::size_t grover_optimal_iterations(std::size_t num_qubits,
                                      std::size_t num_marked);

/// Runs Grover on n qubits with a black-box phase oracle; the diffusion
/// operator is built from gates. `iterations` of 0 selects the optimum for
/// the actual marked count.
GroverResult grover_search(std::size_t num_qubits, const OraclePredicate& marked,
                           core::Rng& rng, std::size_t iterations = 0);

/// ---- Shor's factoring ---------------------------------------------------

struct ShorResult {
  bool success = false;
  std::uint64_t factor1 = 0;
  std::uint64_t factor2 = 0;
  std::size_t attempts = 0;       ///< quantum order-finding runs used
  std::uint64_t last_base = 0;    ///< the 'a' that produced the factors
  std::uint64_t period = 0;       ///< the order r of a mod N
  std::size_t qubits_used = 0;
  bool used_quantum = false;      ///< false when classical shortcuts sufficed
};

/// Factors composite N (>= 4) via quantum period finding with continued-
/// fraction post-processing. Requires 3*ceil(log2 N) qubits to simulate;
/// practical here for N up to ~100. With `require_quantum`, lucky classical
/// hits (gcd(a, N) > 1) are resampled instead of returned, so the factors
/// demonstrably come from order finding (used by the E11 bench).
ShorResult shor_factor(std::uint64_t n, core::Rng& rng,
                       std::size_t max_attempts = 20,
                       bool require_quantum = false);

/// ---- Oracle-based textbook algorithms ----------------------------------

/// Bernstein–Vazirani: recovers the hidden string s from one oracle query.
/// Fully gate-built (the oracle is Z gates on the bits of s).
std::uint64_t bernstein_vazirani(std::uint64_t secret, std::size_t num_qubits,
                                 core::Rng& rng);

/// Deutsch–Jozsa on a parity (balanced) or constant oracle; returns true if
/// the algorithm declares "balanced".
bool deutsch_jozsa_is_balanced(std::size_t num_qubits, bool balanced,
                               core::Rng& rng);

/// ---- DNA subsequence matching (Sec. II-C genome use case) --------------

/// Four-letter genome alphabet.
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

using DnaSequence = std::vector<Base>;

DnaSequence random_dna(core::Rng& rng, std::size_t length);
DnaSequence dna_from_string(const std::string& text);
std::string dna_to_string(const DnaSequence& seq);

/// Exact-match positions of `pattern` in `text` (classical scan); also
/// reports the number of base comparisons performed.
std::vector<std::size_t> dna_match_classical(const DnaSequence& text,
                                             const DnaSequence& pattern,
                                             std::size_t* comparisons = nullptr);

struct DnaMatchResult {
  std::optional<std::size_t> position;  ///< a matching offset, if found
  std::size_t oracle_calls = 0;         ///< Grover iterations used
  std::size_t index_qubits = 0;
  core::Real success_probability = 0.0;
};

/// Grover search over the match-offset register: the oracle marks offsets i
/// where text[i..i+m) == pattern. One oracle call examines the entire
/// encoded dataset in superposition — the paper's "computation of the entire
/// data-set in parallel".
DnaMatchResult dna_match_grover(const DnaSequence& text,
                                const DnaSequence& pattern, core::Rng& rng);

}  // namespace rebooting::quantum
