// Canonical circuit hashing + the content-addressed compile cache
// (DESIGN.md §14). Two circuits that differ only by a relabeling of their
// qubits compile to the same program modulo that relabeling, so the cache
// keys on a canonical form: qubits renamed in first-use order over the gate
// list. Gate order is significant (circuits are straight-line programs), so
// first-use order is a complete invariant — no search needed, unlike the CNF
// canonicalizer.
//
// Angle policy: angles hash by exact IEEE-754 bit pattern with only -0.0
// identified with +0.0 (see HashWriter::real). We deliberately do NOT
// quantize angles into buckets: two circuits with nearby-but-different
// rotations are different programs, and aliasing them would return wrong
// amplitudes. The cost is that pi computed two ways may miss a hit — safe
// and merely slow, the right failure direction for a result cache.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/cache.h"
#include "quantum/circuit.h"
#include "quantum/compiler.h"

namespace rebooting::quantum {

/// A circuit rewritten into canonical qubit labels, plus the relabeling that
/// got it there.
struct CanonicalCircuit {
  Circuit circuit;  ///< canonical labels, -0.0 angles normalized to +0.0
  /// perm[original_qubit] = canonical_qubit. Qubits never touched by a gate
  /// are assigned the remaining labels in ascending original order.
  std::vector<std::size_t> perm;
  bool identity = true;  ///< perm is the identity (common case)
  core::HashKey128 hash;  ///< digest of the canonical encoding
};

/// Relabels qubits by first use over the operation list and digests the
/// canonical byte encoding (versioned; gate kinds, operands, angles).
CanonicalCircuit canonicalize(const Circuit& circuit);

/// Cache key for a full compilation: canonical circuit + topology
/// (name, size, edge set) + compiler options.
core::HashKey128 compile_key(const CanonicalCircuit& canon,
                             const Topology& topology, bool enable_optimizer);

/// Content-addressed `compile`. On a miss, compiles the *canonical* circuit
/// and caches the program; on a hit, returns the shared cached program.
/// Either way `perm_out` (if non-null) receives the original->canonical
/// relabeling the caller must compose with the program's final_map to get
/// original-logical -> physical. With caching disabled this is exactly
/// `compile(circuit, ...)` with an identity perm.
std::shared_ptr<const CompiledProgram> compile_cached(
    const Circuit& circuit, const Topology& topology, bool enable_optimizer,
    std::vector<std::size_t>* perm_out = nullptr);

/// The process-wide compile cache ("quantum.compile"), for stats and tests.
core::ShardedCache<CompiledProgram>& compile_cache();

}  // namespace rebooting::quantum
