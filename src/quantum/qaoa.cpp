#include "quantum/qaoa.h"

#include <cmath>
#include <stdexcept>

#include "quantum/circuit.h"

namespace rebooting::quantum {

using core::kPi;
using core::Real;

Real ising_energy(const std::vector<IsingBondView>& bonds,
                  const std::vector<std::int8_t>& spins) {
  Real e = 0.0;
  for (const IsingBondView& b : bonds)
    e -= b.coupling * static_cast<Real>(spins[b.i]) *
         static_cast<Real>(spins[b.j]);
  return e;
}

namespace {

/// Ising energy of a basis state (bit = 1 means spin up).
Real basis_energy(const std::vector<IsingBondView>& bonds, std::uint64_t s) {
  Real e = 0.0;
  for (const IsingBondView& b : bonds) {
    const Real si = (s >> b.i) & 1ull ? 1.0 : -1.0;
    const Real sj = (s >> b.j) & 1ull ? 1.0 : -1.0;
    e -= b.coupling * si * sj;
  }
  return e;
}

struct Evaluator {
  std::size_t n;
  const std::vector<IsingBondView>& bonds;
  std::vector<Real> energies;  ///< per basis state, precomputed
  std::size_t evaluations = 0;

  Evaluator(std::size_t num_spins, const std::vector<IsingBondView>& b)
      : n(num_spins), bonds(b), energies(1ull << num_spins) {
    for (std::uint64_t s = 0; s < energies.size(); ++s)
      energies[s] = basis_energy(bonds, s);
  }

  /// Prepares the QAOA state for the given angle schedule.
  StateVector prepare(const std::vector<Real>& gammas,
                      const std::vector<Real>& betas) {
    ++evaluations;
    StateVector state(n);
    const Gate2x2 h = gate_matrix(GateKind::kH);
    for (std::size_t q = 0; q < n; ++q) state.apply_1q(h, q);
    for (std::size_t layer = 0; layer < gammas.size(); ++layer) {
      const Real gamma = gammas[layer];
      state.apply_diagonal([this, gamma](std::uint64_t s) {
        return std::polar(1.0, -gamma * energies[s]);
      });
      const Gate2x2 mixer = gate_matrix(GateKind::kRx, 2.0 * betas[layer]);
      for (std::size_t q = 0; q < n; ++q) state.apply_1q(mixer, q);
    }
    return state;
  }

  Real expectation(const std::vector<Real>& gammas,
                   const std::vector<Real>& betas) {
    const StateVector state = prepare(gammas, betas);
    Real e = 0.0;
    for (std::uint64_t s = 0; s < energies.size(); ++s)
      e += std::norm(state.amplitude(s)) * energies[s];
    return e;
  }
};

}  // namespace

QaoaResult qaoa_ising(std::size_t num_spins,
                      const std::vector<IsingBondView>& bonds, core::Rng& rng,
                      const QaoaOptions& opts) {
  if (num_spins == 0 || num_spins > 20)
    throw std::invalid_argument("qaoa_ising: spins in [1, 20]");
  if (opts.layers == 0 || opts.grid_points < 3)
    throw std::invalid_argument("qaoa_ising: bad options");
  for (const IsingBondView& b : bonds)
    if (b.i >= num_spins || b.j >= num_spins || b.i == b.j)
      throw std::invalid_argument("qaoa_ising: bad bond");

  Evaluator eval(num_spins, bonds);

  // Linear ramp initialization (the adiabatic-inspired schedule).
  std::vector<Real> gammas(opts.layers), betas(opts.layers);
  for (std::size_t l = 0; l < opts.layers; ++l) {
    const Real frac = (static_cast<Real>(l) + 0.5) /
                      static_cast<Real>(opts.layers);
    gammas[l] = 0.4 * frac;
    betas[l] = 0.4 * (1.0 - frac);
  }

  // Coordinate grid descent: optimize one angle at a time on a grid, a few
  // sweeps over all angles.
  Real best_expect = eval.expectation(gammas, betas);
  for (std::size_t sweep = 0; sweep < opts.sweeps; ++sweep) {
    for (std::size_t l = 0; l < opts.layers; ++l) {
      for (const bool is_gamma : {true, false}) {
        const Real hi = is_gamma ? kPi : kPi / 2.0;
        Real best_angle = is_gamma ? gammas[l] : betas[l];
        for (std::size_t g = 0; g < opts.grid_points; ++g) {
          const Real angle =
              hi * static_cast<Real>(g) / static_cast<Real>(opts.grid_points);
          (is_gamma ? gammas[l] : betas[l]) = angle;
          const Real e = eval.expectation(gammas, betas);
          if (e < best_expect) {
            best_expect = e;
            best_angle = angle;
          }
        }
        (is_gamma ? gammas[l] : betas[l]) = best_angle;
      }
    }
  }

  QaoaResult result;
  result.gammas = gammas;
  result.betas = betas;
  result.expected_energy = best_expect;

  // Sample the optimized state, keep the best measured configuration.
  const StateVector state = eval.prepare(gammas, betas);
  result.best_energy = 1e300;
  for (std::size_t shot = 0; shot < opts.samples; ++shot) {
    const std::uint64_t s = state.sample(rng);
    const Real e = eval.energies[s];
    if (e < result.best_energy) {
      result.best_energy = e;
      result.best_spins.assign(num_spins, -1);
      for (std::size_t q = 0; q < num_spins; ++q)
        if ((s >> q) & 1ull) result.best_spins[q] = 1;
    }
  }
  result.circuit_evaluations = eval.evaluations;
  return result;
}

}  // namespace rebooting::quantum
