#include "quantum/compiler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "quantum/qisa.h"
#include "telemetry/telemetry.h"

namespace rebooting::quantum {

using core::kPi;
using core::kTwoPi;

Topology Topology::all_to_all(std::size_t n) {
  Topology t(n, "all-to-all");
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b) t.add_edge(a, b);
  return t;
}

Topology Topology::line(std::size_t n) {
  Topology t(n, "line");
  for (std::size_t a = 0; a + 1 < n; ++a) t.add_edge(a, a + 1);
  return t;
}

Topology Topology::grid(std::size_t rows, std::size_t cols) {
  Topology t(rows * cols, "grid");
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t q = r * cols + c;
      if (c + 1 < cols) t.add_edge(q, q + 1);
      if (r + 1 < rows) t.add_edge(q, q + cols);
    }
  return t;
}

void Topology::add_edge(std::size_t a, std::size_t b) {
  if (a >= n_ || b >= n_ || a == b)
    throw std::invalid_argument("Topology: bad edge");
  edges_.insert({std::min(a, b), std::max(a, b)});
}

bool Topology::connected(std::size_t a, std::size_t b) const {
  return edges_.contains({std::min(a, b), std::max(a, b)});
}

std::vector<std::size_t> Topology::shortest_path(std::size_t a,
                                                 std::size_t b) const {
  if (a == b) return {a};
  std::vector<std::size_t> parent(n_, n_);
  std::deque<std::size_t> queue{a};
  parent[a] = a;
  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    for (std::size_t next = 0; next < n_; ++next) {
      if (parent[next] != n_ || !connected(cur, next)) continue;
      parent[next] = cur;
      if (next == b) {
        std::vector<std::size_t> path{b};
        std::size_t walk = b;
        while (walk != a) {
          walk = parent[walk];
          path.push_back(walk);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  throw std::runtime_error("Topology::shortest_path: disconnected qubits");
}

namespace {

/// Emits the native-gate lowering of one operation.
void lower(const Operation& op, Circuit& out) {
  const auto& q = op.qubits;
  switch (op.kind) {
    case GateKind::kI:
      return;  // dropped
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kCz:
    case GateKind::kMeasure:
      out.add(op.kind, q, op.angle);
      return;
    case GateKind::kX:
      out.rx(q[0], kPi);
      return;
    case GateKind::kY:
      out.ry(q[0], kPi);
      return;
    case GateKind::kZ:
      out.rz(q[0], kPi);
      return;
    case GateKind::kH:
      // H = X * Ry(pi/2) exactly (as real matrices); apply Ry then X.
      out.ry(q[0], kPi / 2.0);
      out.rx(q[0], kPi);
      return;
    case GateKind::kS:
      out.rz(q[0], kPi / 2.0);
      return;
    case GateKind::kSdg:
      out.rz(q[0], -kPi / 2.0);
      return;
    case GateKind::kT:
      out.rz(q[0], kPi / 4.0);
      return;
    case GateKind::kTdg:
      out.rz(q[0], -kPi / 4.0);
      return;
    case GateKind::kPhase:
      out.rz(q[0], op.angle);
      return;
    case GateKind::kCx:
      lower({GateKind::kH, {q[1]}, 0.0}, out);
      out.cz(q[0], q[1]);
      lower({GateKind::kH, {q[1]}, 0.0}, out);
      return;
    case GateKind::kSwap:
      lower({GateKind::kCx, {q[0], q[1]}, 0.0}, out);
      lower({GateKind::kCx, {q[1], q[0]}, 0.0}, out);
      lower({GateKind::kCx, {q[0], q[1]}, 0.0}, out);
      return;
    case GateKind::kCcx: {
      // Standard 6-CX Toffoli.
      const std::size_t c1 = q[0], c2 = q[1], t = q[2];
      auto emit = [&out](GateKind k, std::vector<std::size_t> qs,
                         core::Real a = 0.0) {
        lower({k, std::move(qs), a}, out);
      };
      emit(GateKind::kH, {t});
      emit(GateKind::kCx, {c2, t});
      emit(GateKind::kTdg, {t});
      emit(GateKind::kCx, {c1, t});
      emit(GateKind::kT, {t});
      emit(GateKind::kCx, {c2, t});
      emit(GateKind::kTdg, {t});
      emit(GateKind::kCx, {c1, t});
      emit(GateKind::kT, {c2});
      emit(GateKind::kT, {t});
      emit(GateKind::kH, {t});
      emit(GateKind::kCx, {c1, c2});
      emit(GateKind::kT, {c1});
      emit(GateKind::kTdg, {c2});
      emit(GateKind::kCx, {c1, c2});
      return;
    }
  }
}

}  // namespace

Circuit decompose_to_native(const Circuit& circuit) {
  Circuit out(circuit.num_qubits());
  for (const Operation& op : circuit.operations()) lower(op, out);
  return out;
}

RoutingResult route(const Circuit& circuit, const Topology& topology) {
  if (topology.num_qubits() < circuit.num_qubits())
    throw std::invalid_argument("route: topology too small");
  RoutingResult result{Circuit(topology.num_qubits()), {}, 0};

  // logical -> physical and its inverse; identity initial placement.
  std::vector<std::size_t> phys(topology.num_qubits());
  std::vector<std::size_t> logical_at(topology.num_qubits());
  for (std::size_t i = 0; i < phys.size(); ++i) phys[i] = logical_at[i] = i;

  auto apply_swap = [&](std::size_t pa, std::size_t pb) {
    result.circuit.swap(pa, pb);
    ++result.swaps_inserted;
    const std::size_t la = logical_at[pa];
    const std::size_t lb = logical_at[pb];
    std::swap(logical_at[pa], logical_at[pb]);
    phys[la] = pb;
    phys[lb] = pa;
  };

  for (const Operation& op : circuit.operations()) {
    if (op.qubits.size() > 2)
      throw std::invalid_argument("route: decompose 3-qubit gates first");
    if (op.qubits.size() == 1 || op.kind == GateKind::kMeasure) {
      result.circuit.add(op.kind, {phys[op.qubits[0]]}, op.angle);
      continue;
    }
    std::size_t pa = phys[op.qubits[0]];
    std::size_t pb = phys[op.qubits[1]];
    if (!topology.connected(pa, pb)) {
      const auto path = topology.shortest_path(pa, pb);
      // Walk operand A down the path until adjacent to B.
      for (std::size_t i = 0; i + 2 < path.size(); ++i)
        apply_swap(path[i], path[i + 1]);
      pa = phys[op.qubits[0]];
      pb = phys[op.qubits[1]];
    }
    result.circuit.add(op.kind, {pa, pb}, op.angle);
  }
  result.final_map.assign(circuit.num_qubits(), 0);
  for (std::size_t l = 0; l < circuit.num_qubits(); ++l)
    result.final_map[l] = phys[l];
  return result;
}

namespace {

bool is_rotation(GateKind k) {
  return k == GateKind::kRx || k == GateKind::kRy || k == GateKind::kRz;
}

bool angle_is_trivial(core::Real a) {
  const core::Real reduced = std::remainder(a, kTwoPi);
  return std::abs(reduced) < 1e-12;
}

/// One optimization pass; returns true if anything changed.
bool optimize_pass(std::vector<Operation>& ops) {
  bool changed = false;
  std::vector<Operation> out;
  out.reserve(ops.size());
  // last_on[q] = index into `out` of the last op touching qubit q.
  std::vector<std::ptrdiff_t> last_on;

  auto grow = [&last_on](std::size_t q) {
    if (q >= last_on.size()) last_on.resize(q + 1, -1);
  };

  for (Operation& op : ops) {
    for (const std::size_t q : op.qubits) grow(q);

    if (is_rotation(op.kind) && angle_is_trivial(op.angle)) {
      changed = true;
      continue;
    }

    if (is_rotation(op.kind)) {
      const std::size_t q = op.qubits[0];
      const std::ptrdiff_t prev = last_on[q];
      if (prev >= 0 && out[static_cast<std::size_t>(prev)].kind == op.kind &&
          out[static_cast<std::size_t>(prev)].qubits.size() == 1) {
        auto& merged = out[static_cast<std::size_t>(prev)];
        merged.angle = std::remainder(merged.angle + op.angle, kTwoPi);
        changed = true;
        if (angle_is_trivial(merged.angle)) {
          // Remove the merged-away identity (mark as kI; swept below).
          merged.kind = GateKind::kI;
          last_on[q] = -1;
        }
        continue;
      }
    }

    if (op.kind == GateKind::kCz) {
      const std::size_t a = op.qubits[0];
      const std::size_t b = op.qubits[1];
      const std::ptrdiff_t pa = last_on[a];
      if (pa >= 0 && pa == last_on[b]) {
        const auto& prev = out[static_cast<std::size_t>(pa)];
        if (prev.kind == GateKind::kCz &&
            ((prev.qubits[0] == a && prev.qubits[1] == b) ||
             (prev.qubits[0] == b && prev.qubits[1] == a))) {
          out[static_cast<std::size_t>(pa)].kind = GateKind::kI;
          last_on[a] = last_on[b] = -1;
          changed = true;
          continue;
        }
      }
    }

    out.push_back(std::move(op));
    const auto idx = static_cast<std::ptrdiff_t>(out.size() - 1);
    for (const std::size_t q : out.back().qubits) last_on[q] = idx;
  }

  // Sweep out the kI tombstones.
  std::vector<Operation> swept;
  swept.reserve(out.size());
  for (Operation& op : out)
    if (op.kind != GateKind::kI) swept.push_back(std::move(op));
  ops = std::move(swept);
  return changed;
}

}  // namespace

Circuit optimize(const Circuit& circuit) {
  std::vector<Operation> ops(circuit.operations().begin(),
                             circuit.operations().end());
  // Fixpoint with a safety bound (each pass strictly shrinks or stabilizes).
  for (std::size_t pass = 0; pass < ops.size() + 2; ++pass)
    if (!optimize_pass(ops)) break;
  Circuit out(circuit.num_qubits());
  for (Operation& op : ops) out.add(op.kind, std::move(op.qubits), op.angle);
  return out;
}

Schedule schedule_asap(const Circuit& circuit) {
  Schedule sched;
  sched.start_cycle.reserve(circuit.size());
  std::vector<std::size_t> ready(circuit.num_qubits(), 0);
  for (const Operation& op : circuit.operations()) {
    std::size_t start = 0;
    for (const std::size_t q : op.qubits) start = std::max(start, ready[q]);
    const std::size_t end = start + instruction_cycles(op.kind);
    for (const std::size_t q : op.qubits) ready[q] = end;
    sched.start_cycle.push_back(start);
    sched.total_cycles = std::max(sched.total_cycles, end);
  }
  return sched;
}

CompiledProgram compile(const Circuit& circuit, const Topology& topology,
                        bool enable_optimizer) {
  TELEM_SPAN("quantum.compile");
  TELEM_TRACE_SCOPE("quantum.compile");
  CompiledProgram prog{Circuit(1), {}, {}, {}};
  prog.report.source_gates = circuit.size();
  prog.report.source_depth = circuit.depth();

  const Circuit lowered = [&] {
    TELEM_SPAN("quantum.compile.decompose");
    return decompose_to_native(circuit);
  }();
  prog.report.decomposed_gates = lowered.size();

  RoutingResult routed = [&] {
    TELEM_SPAN("quantum.compile.route");
    return route(lowered, topology);
  }();
  prog.report.swaps_inserted = routed.swaps_inserted;
  {
    // Routing introduces SWAPs — lower them too.
    TELEM_SPAN("quantum.compile.decompose");
    prog.circuit = decompose_to_native(routed.circuit);
  }
  prog.report.routed_gates = prog.circuit.size();
  prog.final_map = std::move(routed.final_map);

  if (enable_optimizer) {
    TELEM_SPAN("quantum.compile.optimize");
    prog.circuit = optimize(prog.circuit);
  }
  prog.report.optimized_gates = prog.circuit.size();
  prog.report.final_depth = prog.circuit.depth();

  {
    TELEM_SPAN("quantum.compile.schedule");
    prog.schedule = schedule_asap(prog.circuit);
  }
  prog.report.total_cycles = prog.schedule.total_cycles;
  TELEM_COUNT("quantum.compile.swaps_inserted",
              static_cast<core::Real>(prog.report.swaps_inserted));
  TELEM_COUNT("quantum.compile.gates_out",
              static_cast<core::Real>(prog.report.optimized_gates));
  return prog;
}

}  // namespace rebooting::quantum
