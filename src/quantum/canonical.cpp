#include "quantum/canonical.h"

#include <utility>

namespace rebooting::quantum {

namespace {

// Bumped whenever the canonical encoding or the compiler pipeline changes
// meaning, so stale digests from older builds can never alias.
constexpr std::uint32_t kCircuitEncodingVersion = 1;

constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

std::size_t program_bytes(const CompiledProgram& prog) {
  std::size_t bytes = sizeof(CompiledProgram);
  for (const Operation& op : prog.circuit.operations())
    bytes += sizeof(Operation) + op.qubits.size() * sizeof(std::size_t);
  bytes += prog.schedule.start_cycle.size() * sizeof(std::size_t);
  bytes += prog.final_map.size() * sizeof(std::size_t);
  return bytes;
}

}  // namespace

CanonicalCircuit canonicalize(const Circuit& circuit) {
  const std::size_t n = circuit.num_qubits();
  std::vector<std::size_t> perm(n, kUnassigned);
  std::size_t next = 0;
  for (const Operation& op : circuit.operations())
    for (std::size_t q : op.qubits)
      if (perm[q] == kUnassigned) perm[q] = next++;
  // Untouched qubits keep relative order after the used ones.
  for (std::size_t q = 0; q < n; ++q)
    if (perm[q] == kUnassigned) perm[q] = next++;

  bool identity = true;
  for (std::size_t q = 0; q < n; ++q)
    if (perm[q] != q) {
      identity = false;
      break;
    }

  Circuit canonical(n);
  core::HashWriter w;
  w.u32(kCircuitEncodingVersion);
  w.u64(n);
  w.u64(circuit.size());
  for (const Operation& op : circuit.operations()) {
    std::vector<std::size_t> qubits;
    qubits.reserve(op.qubits.size());
    for (std::size_t q : op.qubits) qubits.push_back(perm[q]);
    // HashWriter::real already folds -0.0 into +0.0; mirror that in the
    // executable canonical circuit so hash-equal circuits run identically.
    core::Real angle = op.angle;
    if (angle == core::Real{0}) angle = core::Real{0};
    w.u8(static_cast<std::uint8_t>(op.kind));
    w.u8(static_cast<std::uint8_t>(qubits.size()));
    for (std::size_t q : qubits) w.u64(q);
    w.real(angle);
    canonical.add(op.kind, std::move(qubits), angle);
  }

  CanonicalCircuit out{std::move(canonical), std::move(perm), identity,
                       w.finish()};
  return out;
}

core::HashKey128 compile_key(const CanonicalCircuit& canon,
                             const Topology& topology, bool enable_optimizer) {
  core::HashWriter w;
  w.u32(kCircuitEncodingVersion);
  w.u64(canon.hash.hi);
  w.u64(canon.hash.lo);
  w.str(topology.name());
  w.u64(topology.num_qubits());
  w.u64(topology.edges().size());
  for (const auto& [a, b] : topology.edges()) {  // std::set: sorted order
    w.u64(a);
    w.u64(b);
  }
  w.u8(enable_optimizer ? 1 : 0);
  return w.finish();
}

core::ShardedCache<CompiledProgram>& compile_cache() {
  static auto* cache = new core::ShardedCache<CompiledProgram>([] {
    core::CacheConfig config;
    config.name = "quantum.compile";
    config.max_entries = 1024;
    config.max_bytes = std::size_t{32} << 20;
    return config;
  }());
  return *cache;
}

std::shared_ptr<const CompiledProgram> compile_cached(
    const Circuit& circuit, const Topology& topology, bool enable_optimizer,
    std::vector<std::size_t>* perm_out) {
  if (!core::cache_enabled()) {
    // The original, pre-cache path, byte for byte.
    if (perm_out) {
      perm_out->resize(circuit.num_qubits());
      for (std::size_t q = 0; q < circuit.num_qubits(); ++q)
        (*perm_out)[q] = q;
    }
    return std::make_shared<const CompiledProgram>(
        compile(circuit, topology, enable_optimizer));
  }

  CanonicalCircuit canon = canonicalize(circuit);
  if (perm_out) *perm_out = canon.perm;
  const core::HashKey128 key = compile_key(canon, topology, enable_optimizer);
  if (auto cached = compile_cache().get(key)) return cached;

  // Compile the canonical circuit: every hash-equal submission then shares
  // one program, and the caller's perm translates its labels back.
  auto prog = std::make_shared<const CompiledProgram>(
      compile(canon.circuit, topology, enable_optimizer));
  compile_cache().put(key, prog, program_bytes(*prog));
  return prog;
}

}  // namespace rebooting::quantum
