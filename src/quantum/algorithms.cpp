#include "quantum/algorithms.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rebooting::quantum {

using core::kPi;
using core::Real;

Circuit qft_circuit(std::size_t n) {
  Circuit c(n);
  // Standard QFT: H then controlled phases, finished with bit-reversal swaps.
  for (std::size_t j = n; j-- > 0;) {
    c.h(j);
    for (std::size_t k = j; k-- > 0;) {
      const Real angle = kPi / static_cast<Real>(1ull << (j - k));
      // Controlled-phase built from the native vocabulary:
      // CP(theta) = P(theta/2) on both + CX conjugated P(-theta/2).
      c.phase(j, angle / 2.0);
      c.cx(j, k);
      c.phase(k, -angle / 2.0);
      c.cx(j, k);
      c.phase(k, angle / 2.0);
    }
  }
  for (std::size_t i = 0; i < n / 2; ++i) c.swap(i, n - 1 - i);
  return c;
}

Circuit inverse_qft_circuit(std::size_t n) {
  const Circuit fwd = qft_circuit(n);
  Circuit inv(n);
  // Reverse the op list, negating angles (all gates used are self-inverse or
  // parameterized rotations/phases).
  const auto& ops = fwd.operations();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    Operation op = *it;
    if (is_parameterized(op.kind)) op.angle = -op.angle;
    inv.add(op.kind, op.qubits, op.angle);
  }
  return inv;
}

std::size_t grover_optimal_iterations(std::size_t num_qubits,
                                      std::size_t num_marked) {
  if (num_marked == 0) return 1;
  const Real n = static_cast<Real>(1ull << num_qubits);
  const Real m = static_cast<Real>(num_marked);
  const auto iters = static_cast<std::size_t>(
      std::floor(kPi / 4.0 * std::sqrt(n / m)));
  return std::max<std::size_t>(1, iters);
}

GroverResult grover_search(std::size_t num_qubits,
                           const OraclePredicate& marked, core::Rng& rng,
                           std::size_t iterations) {
  const std::uint64_t dim = 1ull << num_qubits;
  std::size_t num_marked = 0;
  for (std::uint64_t s = 0; s < dim; ++s)
    if (marked(s)) ++num_marked;

  GroverResult result;
  result.iterations =
      iterations > 0 ? iterations
                     : grover_optimal_iterations(num_qubits, num_marked);

  StateVector state(num_qubits);
  const Gate2x2 h = gate_matrix(GateKind::kH);
  const Gate2x2 x = gate_matrix(GateKind::kX);
  const Gate2x2 z = gate_matrix(GateKind::kZ);
  for (std::size_t q = 0; q < num_qubits; ++q) state.apply_1q(h, q);

  std::vector<std::size_t> controls(num_qubits - 1);
  std::iota(controls.begin(), controls.end(), 0);

  for (std::size_t it = 0; it < result.iterations; ++it) {
    // Phase oracle (black box).
    state.apply_diagonal([&marked](std::uint64_t s) {
      return marked(s) ? Real{-1.0} : Real{1.0};
    });
    ++result.oracle_calls;
    // Diffusion: H^n X^n (multi-controlled Z) X^n H^n, gate-built.
    for (std::size_t q = 0; q < num_qubits; ++q) state.apply_1q(h, q);
    for (std::size_t q = 0; q < num_qubits; ++q) state.apply_1q(x, q);
    if (num_qubits == 1) {
      state.apply_1q(z, 0);
    } else {
      state.apply_controlled(z, controls, num_qubits - 1);
    }
    for (std::size_t q = 0; q < num_qubits; ++q) state.apply_1q(x, q);
    for (std::size_t q = 0; q < num_qubits; ++q) state.apply_1q(h, q);
  }

  Real p_marked = 0.0;
  const auto probs = state.probabilities();
  for (std::uint64_t s = 0; s < dim; ++s)
    if (marked(s)) p_marked += probs[s];
  result.success_probability = p_marked;
  result.found = state.sample(rng);
  result.is_marked = marked(result.found);
  return result;
}

namespace {

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>((__uint128_t{a} * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1ull) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

/// Continued-fraction expansion of phase ~ s/r with denominator bound.
std::uint64_t denominator_from_phase(Real phase, std::uint64_t max_den) {
  // Convergents of the continued fraction of `phase`.
  std::uint64_t prev_den = 0;
  std::uint64_t den = 1;
  Real frac = phase;
  for (int iter = 0; iter < 64; ++iter) {
    const Real floor_part = std::floor(frac);
    const auto a = static_cast<std::uint64_t>(floor_part);
    const std::uint64_t next_den = (iter == 0) ? 1 : a * den + prev_den;
    if (iter > 0) {
      if (next_den > max_den) break;
      prev_den = den;
      den = next_den;
    }
    const Real rem = frac - floor_part;
    if (rem < 1e-12) break;
    frac = 1.0 / rem;
  }
  return den;
}

/// One run of quantum order finding for a mod n. Returns the measured-phase
/// candidate denominator (possible order), or 0.
std::uint64_t order_finding_run(std::uint64_t a, std::uint64_t n,
                                core::Rng& rng, std::size_t& qubits_used) {
  const auto work_bits = static_cast<std::size_t>(std::ceil(std::log2(n)));
  const std::size_t count_bits = 2 * work_bits;
  const std::size_t total = count_bits + work_bits;
  qubits_used = std::max(qubits_used, total);

  StateVector state(total);
  const Gate2x2 h = gate_matrix(GateKind::kH);
  // Counting register in uniform superposition; work register to |1>.
  for (std::size_t q = 0; q < count_bits; ++q) state.apply_1q(h, q);
  state.apply_1q(gate_matrix(GateKind::kX), count_bits);

  // Controlled modular multiplications: for each counting bit k, map the
  // work register y -> a^(2^k) y mod n on branches where bit k is set. This
  // is the standard black-box for the modular-exponentiation circuit.
  const std::uint64_t work_mask = ((1ull << work_bits) - 1) << count_bits;
  for (std::size_t k = 0; k < count_bits; ++k) {
    const std::uint64_t factor = powmod(a, 1ull << k, n);
    state.apply_permutation([&](std::uint64_t s) -> std::uint64_t {
      if (!(s & (1ull << k))) return s;
      const std::uint64_t y = (s & work_mask) >> count_bits;
      if (y >= n) return s;  // out-of-range states are fixed points
      const std::uint64_t y2 = mulmod(factor, y, n);
      return (s & ~work_mask) | (y2 << count_bits);
    });
  }

  // Gate-level inverse QFT on the counting register, then measure it.
  const Circuit iqft = inverse_qft_circuit(count_bits);
  for (const Operation& op : iqft.operations()) apply_operation(state, op);

  std::uint64_t measured = 0;
  for (std::size_t q = 0; q < count_bits; ++q)
    if (state.measure_qubit(q, rng)) measured |= 1ull << q;

  const Real phase = static_cast<Real>(measured) /
                     static_cast<Real>(1ull << count_bits);
  if (phase == 0.0) return 0;
  return denominator_from_phase(phase, n);
}

}  // namespace

ShorResult shor_factor(std::uint64_t n, core::Rng& rng,
                       std::size_t max_attempts, bool require_quantum) {
  if (n < 4) throw std::invalid_argument("shor_factor: n must be >= 4");
  ShorResult result;
  if (n % 2 == 0) {
    result.success = true;
    result.factor1 = 2;
    result.factor2 = n / 2;
    return result;
  }
  // Perfect-power check (classical preprocessing): n == r^b for some b >= 2?
  for (std::uint64_t b = 2; (1ull << b) <= n; ++b) {
    const Real root = std::pow(static_cast<Real>(n), 1.0 / static_cast<Real>(b));
    const auto guess = static_cast<std::uint64_t>(std::llround(root));
    for (std::uint64_t r = (guess > 2 ? guess - 1 : 2); r <= guess + 1; ++r) {
      std::uint64_t p = 1;
      bool overflow = false;
      for (std::uint64_t i = 0; i < b; ++i) {
        if (p > n / r) {
          overflow = true;
          break;
        }
        p *= r;
      }
      if (!overflow && p == n) {
        result.success = true;
        result.factor1 = r;
        result.factor2 = n / r;
        return result;
      }
    }
  }

  while (result.attempts < max_attempts) {
    ++result.attempts;
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(2, static_cast<std::int64_t>(n - 2)));
    const std::uint64_t g = gcd_u64(a, n);
    if (g > 1) {
      if (require_quantum) continue;  // resample a coprime base
      // A nontrivial divisor is a nontrivial divisor.
      result.success = true;
      result.factor1 = g;
      result.factor2 = n / g;
      result.last_base = a;
      return result;
    }
    const std::uint64_t r = order_finding_run(a, n, rng, result.qubits_used);
    result.used_quantum = true;
    if (r == 0 || r % 2 == 1) continue;
    if (powmod(a, r, n) != 1) continue;  // candidate denominator wasn't the order
    const std::uint64_t half = powmod(a, r / 2, n);
    if (half == n - 1) continue;  // trivial square root
    const std::uint64_t f1 = gcd_u64(half - 1, n);
    const std::uint64_t f2 = gcd_u64(half + 1, n);
    for (const std::uint64_t f : {f1, f2}) {
      if (f > 1 && f < n && n % f == 0) {
        result.success = true;
        result.factor1 = f;
        result.factor2 = n / f;
        result.last_base = a;
        result.period = r;
        return result;
      }
    }
  }
  return result;
}

std::uint64_t bernstein_vazirani(std::uint64_t secret, std::size_t num_qubits,
                                 core::Rng& rng) {
  if (num_qubits == 0 || num_qubits > 20)
    throw std::invalid_argument("bernstein_vazirani: bad qubit count");
  // Phase-oracle form: H^n, Z on the bits of s, H^n. One query.
  Circuit c(num_qubits);
  for (std::size_t q = 0; q < num_qubits; ++q) c.h(q);
  for (std::size_t q = 0; q < num_qubits; ++q)
    if (secret & (1ull << q)) c.z(q);
  for (std::size_t q = 0; q < num_qubits; ++q) c.h(q);
  StateVector state = simulate(c);
  return state.sample(rng);  // deterministically |s> in the noiseless case
}

bool deutsch_jozsa_is_balanced(std::size_t num_qubits, bool balanced,
                               core::Rng& rng) {
  Circuit c(num_qubits);
  for (std::size_t q = 0; q < num_qubits; ++q) c.h(q);
  if (balanced) c.z(0);  // parity-of-bit-0 oracle: balanced
  for (std::size_t q = 0; q < num_qubits; ++q) c.h(q);
  StateVector state = simulate(c);
  return state.sample(rng) != 0;  // |0..0> iff constant
}

DnaSequence random_dna(core::Rng& rng, std::size_t length) {
  DnaSequence seq(length);
  for (auto& b : seq) b = static_cast<Base>(rng.uniform_index(4));
  return seq;
}

DnaSequence dna_from_string(const std::string& text) {
  DnaSequence seq;
  seq.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case 'A': case 'a': seq.push_back(Base::A); break;
      case 'C': case 'c': seq.push_back(Base::C); break;
      case 'G': case 'g': seq.push_back(Base::G); break;
      case 'T': case 't': seq.push_back(Base::T); break;
      default:
        throw std::invalid_argument("dna_from_string: bad base character");
    }
  }
  return seq;
}

std::string dna_to_string(const DnaSequence& seq) {
  std::string out;
  out.reserve(seq.size());
  for (const Base b : seq) out += "ACGT"[static_cast<std::size_t>(b)];
  return out;
}

std::vector<std::size_t> dna_match_classical(const DnaSequence& text,
                                             const DnaSequence& pattern,
                                             std::size_t* comparisons) {
  std::vector<std::size_t> matches;
  if (pattern.empty() || pattern.size() > text.size()) return matches;
  std::size_t cmp = 0;
  for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < pattern.size(); ++j) {
      ++cmp;
      if (text[i + j] != pattern[j]) {
        match = false;
        break;
      }
    }
    if (match) matches.push_back(i);
  }
  if (comparisons) *comparisons += cmp;
  return matches;
}

DnaMatchResult dna_match_grover(const DnaSequence& text,
                                const DnaSequence& pattern, core::Rng& rng) {
  DnaMatchResult result;
  if (pattern.empty() || pattern.size() > text.size()) return result;
  const std::size_t offsets = text.size() - pattern.size() + 1;
  std::size_t bits = 1;
  while ((1ull << bits) < offsets) ++bits;
  result.index_qubits = bits;

  const auto is_match = [&](std::uint64_t i) {
    if (i >= offsets) return false;
    for (std::size_t j = 0; j < pattern.size(); ++j)
      if (text[i + j] != pattern[j]) return false;
    return true;
  };

  const GroverResult g = grover_search(bits, is_match, rng);
  result.oracle_calls = g.oracle_calls;
  result.success_probability = g.success_probability;
  if (g.is_marked) result.position = g.found;
  return result;
}

}  // namespace rebooting::quantum
