#include "quantum/qisa.h"

#include <map>
#include <sstream>
#include <stdexcept>

namespace rebooting::quantum {

std::size_t instruction_cycles(GateKind kind) {
  switch (kind) {
    case GateKind::kMeasure: return 10;
    case GateKind::kCx:
    case GateKind::kCz:
    case GateKind::kSwap: return 2;
    case GateKind::kCcx: return 6;
    default: return 1;
  }
}

namespace {

const std::map<std::string, GateKind>& mnemonic_table() {
  static const std::map<std::string, GateKind> table = {
      {"i", GateKind::kI},       {"x", GateKind::kX},
      {"y", GateKind::kY},       {"z", GateKind::kZ},
      {"h", GateKind::kH},       {"s", GateKind::kS},
      {"sdg", GateKind::kSdg},   {"t", GateKind::kT},
      {"tdg", GateKind::kTdg},   {"rx", GateKind::kRx},
      {"ry", GateKind::kRy},     {"rz", GateKind::kRz},
      {"p", GateKind::kPhase},   {"cx", GateKind::kCx},
      {"cz", GateKind::kCz},     {"swap", GateKind::kSwap},
      {"ccx", GateKind::kCcx},   {"measure", GateKind::kMeasure},
  };
  return table;
}

std::size_t parse_qubit(const std::string& tok, std::size_t line_no) {
  if (tok.size() < 2 || tok[0] != 'q')
    throw std::runtime_error("qisa line " + std::to_string(line_no) +
                             ": expected qubit operand, got '" + tok + "'");
  return static_cast<std::size_t>(std::stoul(tok.substr(1)));
}

}  // namespace

Circuit assemble(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  std::size_t num_qubits = 0;
  std::vector<Operation> pending;

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string mnemonic;
    if (!(ls >> mnemonic)) continue;  // blank line

    if (mnemonic == "qubits") {
      if (have_header)
        throw std::runtime_error("qisa line " + std::to_string(line_no) +
                                 ": duplicate qubits directive");
      if (!(ls >> num_qubits) || num_qubits == 0)
        throw std::runtime_error("qisa line " + std::to_string(line_no) +
                                 ": bad qubits directive");
      have_header = true;
      continue;
    }

    const auto it = mnemonic_table().find(mnemonic);
    if (it == mnemonic_table().end())
      throw std::runtime_error("qisa line " + std::to_string(line_no) +
                               ": unknown mnemonic '" + mnemonic + "'");
    Operation op;
    op.kind = it->second;
    const std::size_t operands =
        op.kind == GateKind::kMeasure ? 1 : qubit_count(op.kind);
    for (std::size_t i = 0; i < operands; ++i) {
      std::string tok;
      if (!(ls >> tok))
        throw std::runtime_error("qisa line " + std::to_string(line_no) +
                                 ": missing qubit operand");
      op.qubits.push_back(parse_qubit(tok, line_no));
    }
    if (is_parameterized(op.kind)) {
      if (!(ls >> op.angle))
        throw std::runtime_error("qisa line " + std::to_string(line_no) +
                                 ": missing angle");
    }
    std::string extra;
    if (ls >> extra)
      throw std::runtime_error("qisa line " + std::to_string(line_no) +
                               ": trailing token '" + extra + "'");
    pending.push_back(std::move(op));
  }

  if (!have_header) throw std::runtime_error("qisa: missing qubits directive");
  Circuit circuit(num_qubits);
  for (Operation& op : pending)
    circuit.add(op.kind, std::move(op.qubits), op.angle);
  return circuit;
}

std::string disassemble(const Circuit& circuit) {
  std::ostringstream os;
  os << "qubits " << circuit.num_qubits() << '\n';
  for (const Operation& op : circuit.operations()) os << op.to_string() << '\n';
  return os.str();
}

}  // namespace rebooting::quantum
