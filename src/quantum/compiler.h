// The compiler layer of the Fig. 2 stack: lowering to the native gate set,
// qubit mapping/routing onto a constrained topology, peephole optimization,
// and ASAP scheduling onto device cycles.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "quantum/circuit.h"

namespace rebooting::quantum {

/// Physical qubit connectivity of the simulated device.
class Topology {
 public:
  /// Every pair connected (ideal device).
  static Topology all_to_all(std::size_t n);
  /// Qubits on a line: i -- i+1.
  static Topology line(std::size_t n);
  /// rows x cols grid with nearest-neighbour links.
  static Topology grid(std::size_t rows, std::size_t cols);

  std::size_t num_qubits() const { return n_; }
  bool connected(std::size_t a, std::size_t b) const;
  /// BFS shortest path between physical qubits (inclusive of endpoints).
  std::vector<std::size_t> shortest_path(std::size_t a, std::size_t b) const;
  const std::set<std::pair<std::size_t, std::size_t>>& edges() const {
    return edges_;
  }
  std::string name() const { return name_; }

 private:
  Topology(std::size_t n, std::string name) : n_(n), name_(std::move(name)) {}
  void add_edge(std::size_t a, std::size_t b);

  std::size_t n_ = 0;
  std::string name_;
  std::set<std::pair<std::size_t, std::size_t>> edges_;
};

/// Lowers every gate to the native set {rx, ry, rz, cz}; measurements pass
/// through. Exact up to global phase.
Circuit decompose_to_native(const Circuit& circuit);

struct RoutingResult {
  Circuit circuit;                     ///< with SWAPs inserted, physical qubits
  std::vector<std::size_t> final_map;  ///< logical -> physical at the end
  std::size_t swaps_inserted = 0;
};

/// Greedy router: walks each two-qubit gate's operands together along the
/// BFS shortest path, inserting SWAPs and permuting the logical->physical
/// map. Identity initial placement.
RoutingResult route(const Circuit& circuit, const Topology& topology);

/// Peephole optimizer run to fixpoint: merges adjacent rotations on the same
/// qubit and axis (dropping angles ~ 0 mod 2*pi) and cancels adjacent equal
/// CZ pairs.
Circuit optimize(const Circuit& circuit);

struct Schedule {
  std::vector<std::size_t> start_cycle;  ///< per operation
  std::size_t total_cycles = 0;
};

/// ASAP scheduling with instruction_cycles() durations; operations on
/// disjoint qubits overlap.
Schedule schedule_asap(const Circuit& circuit);

/// The full pipeline with per-stage statistics — what the Fig. 2 "compiler +
/// runtime support" layers report upward.
struct CompileReport {
  std::size_t source_gates = 0;
  std::size_t decomposed_gates = 0;
  std::size_t routed_gates = 0;
  std::size_t optimized_gates = 0;
  std::size_t swaps_inserted = 0;
  std::size_t source_depth = 0;
  std::size_t final_depth = 0;
  std::size_t total_cycles = 0;
};

struct CompiledProgram {
  Circuit circuit;
  Schedule schedule;
  CompileReport report;
  std::vector<std::size_t> final_map;
};

/// decompose -> route -> decompose (lowers routing SWAPs) -> optimize ->
/// schedule.
CompiledProgram compile(const Circuit& circuit, const Topology& topology,
                        bool enable_optimizer = true);

}  // namespace rebooting::quantum
