#include "quantum/circuit.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rebooting::quantum {

using core::kPi;

std::string to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kI: return "i";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kRx: return "rx";
    case GateKind::kRy: return "ry";
    case GateKind::kRz: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kCx: return "cx";
    case GateKind::kCz: return "cz";
    case GateKind::kSwap: return "swap";
    case GateKind::kCcx: return "ccx";
    case GateKind::kMeasure: return "measure";
  }
  return "?";
}

bool is_parameterized(GateKind kind) {
  return kind == GateKind::kRx || kind == GateKind::kRy ||
         kind == GateKind::kRz || kind == GateKind::kPhase;
}

std::size_t qubit_count(GateKind kind) {
  switch (kind) {
    case GateKind::kCx:
    case GateKind::kCz:
    case GateKind::kSwap:
      return 2;
    case GateKind::kCcx:
      return 3;
    default:
      return 1;
  }
}

Gate2x2 gate_matrix(GateKind kind, core::Real angle) {
  using C = Complex;
  const core::Real inv_sqrt2 = 1.0 / std::sqrt(2.0);
  switch (kind) {
    case GateKind::kI:
      return {C{1, 0}, C{0, 0}, C{0, 0}, C{1, 0}};
    case GateKind::kX:
      return {C{0, 0}, C{1, 0}, C{1, 0}, C{0, 0}};
    case GateKind::kY:
      return {C{0, 0}, C{0, -1}, C{0, 1}, C{0, 0}};
    case GateKind::kZ:
      return {C{1, 0}, C{0, 0}, C{0, 0}, C{-1, 0}};
    case GateKind::kH:
      return {C{inv_sqrt2, 0}, C{inv_sqrt2, 0}, C{inv_sqrt2, 0},
              C{-inv_sqrt2, 0}};
    case GateKind::kS:
      return {C{1, 0}, C{0, 0}, C{0, 0}, C{0, 1}};
    case GateKind::kSdg:
      return {C{1, 0}, C{0, 0}, C{0, 0}, C{0, -1}};
    case GateKind::kT:
      return {C{1, 0}, C{0, 0}, C{0, 0}, std::polar(1.0, kPi / 4.0)};
    case GateKind::kTdg:
      return {C{1, 0}, C{0, 0}, C{0, 0}, std::polar(1.0, -kPi / 4.0)};
    case GateKind::kRx: {
      const core::Real c = std::cos(angle / 2.0);
      const core::Real s = std::sin(angle / 2.0);
      return {C{c, 0}, C{0, -s}, C{0, -s}, C{c, 0}};
    }
    case GateKind::kRy: {
      const core::Real c = std::cos(angle / 2.0);
      const core::Real s = std::sin(angle / 2.0);
      return {C{c, 0}, C{-s, 0}, C{s, 0}, C{c, 0}};
    }
    case GateKind::kRz:
      return {std::polar(1.0, -angle / 2.0), C{0, 0}, C{0, 0},
              std::polar(1.0, angle / 2.0)};
    case GateKind::kPhase:
      return {C{1, 0}, C{0, 0}, C{0, 0}, std::polar(1.0, angle)};
    default:
      throw std::invalid_argument("gate_matrix: not a single-qubit gate: " +
                                  to_string(kind));
  }
}

std::string Operation::to_string() const {
  std::ostringstream os;
  os << rebooting::quantum::to_string(kind);
  for (const std::size_t q : qubits) os << " q" << q;
  // Max precision so disassemble/assemble round-trips exactly.
  if (is_parameterized(kind)) os << ' ' << std::setprecision(17) << angle;
  return os.str();
}

Circuit::Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits == 0)
    throw std::invalid_argument("Circuit: need at least one qubit");
}

Circuit& Circuit::add(GateKind kind, std::vector<std::size_t> qubits,
                      core::Real angle) {
  if (kind != GateKind::kMeasure && qubits.size() != qubit_count(kind))
    throw std::invalid_argument("Circuit::add: wrong qubit count for " +
                                rebooting::quantum::to_string(kind));
  for (const std::size_t q : qubits)
    if (q >= num_qubits_)
      throw std::invalid_argument("Circuit::add: qubit out of range");
  for (std::size_t i = 0; i < qubits.size(); ++i)
    for (std::size_t j = i + 1; j < qubits.size(); ++j)
      if (qubits[i] == qubits[j])
        throw std::invalid_argument("Circuit::add: duplicate qubit");
  ops_.push_back({kind, std::move(qubits), angle});
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  if (other.num_qubits_ != num_qubits_)
    throw std::invalid_argument("Circuit::append: qubit count mismatch");
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  return *this;
}

std::size_t Circuit::multi_qubit_gates() const {
  std::size_t n = 0;
  for (const Operation& op : ops_)
    if (op.kind != GateKind::kMeasure && op.qubits.size() > 1) ++n;
  return n;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> ready(num_qubits_, 0);
  std::size_t depth = 0;
  for (const Operation& op : ops_) {
    std::size_t start = 0;
    for (const std::size_t q : op.qubits) start = std::max(start, ready[q]);
    for (const std::size_t q : op.qubits) ready[q] = start + 1;
    depth = std::max(depth, start + 1);
  }
  return depth;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "qubits " << num_qubits_ << '\n';
  for (const Operation& op : ops_) os << op.to_string() << '\n';
  return os.str();
}

void apply_operation(StateVector& state, const Operation& op) {
  switch (op.kind) {
    case GateKind::kMeasure:
      throw std::invalid_argument("apply_operation: measurement is not unitary");
    case GateKind::kCx: {
      const std::size_t controls[] = {op.qubits[0]};
      state.apply_controlled(gate_matrix(GateKind::kX), controls, op.qubits[1]);
      return;
    }
    case GateKind::kCz: {
      const std::size_t controls[] = {op.qubits[0]};
      state.apply_controlled(gate_matrix(GateKind::kZ), controls, op.qubits[1]);
      return;
    }
    case GateKind::kCcx: {
      const std::size_t controls[] = {op.qubits[0], op.qubits[1]};
      state.apply_controlled(gate_matrix(GateKind::kX), controls, op.qubits[2]);
      return;
    }
    case GateKind::kSwap:
      state.swap_qubits(op.qubits[0], op.qubits[1]);
      return;
    default:
      state.apply_1q(gate_matrix(op.kind, op.angle), op.qubits[0]);
      return;
  }
}

StateVector simulate(const Circuit& circuit) {
  StateVector state(circuit.num_qubits());
  for (const Operation& op : circuit.operations()) {
    if (op.kind == GateKind::kMeasure) continue;
    apply_operation(state, op);
  }
  return state;
}

}  // namespace rebooting::quantum
