// Dense state-vector simulator — the "device layer" of the Fig. 2 quantum
// accelerator stack. Practical up to ~22 qubits (2^22 complex amplitudes).
//
// The paper's Sec. II describes superconducting qubits at 20 mK; per the
// substitution rule the physical chip is replaced by this simulator, which
// exercises the identical upper stack (QISA, compiler, runtime).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/random.h"
#include "core/types.h"

namespace rebooting::quantum {

using core::Complex;
using core::Real;

/// A 2x2 unitary in row-major order.
struct Gate2x2 {
  Complex m00, m01, m10, m11;
};

class StateVector {
 public:
  /// Initializes |0...0>.
  explicit StateVector(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t dimension() const { return amps_.size(); }
  std::span<const Complex> amplitudes() const { return amps_; }

  Complex amplitude(std::uint64_t basis_state) const {
    return amps_[basis_state];
  }

  /// Applies a single-qubit unitary to `target`.
  void apply_1q(const Gate2x2& g, std::size_t target);

  /// Applies the unitary to `target` controlled on all `controls` being 1.
  void apply_controlled(const Gate2x2& g, std::span<const std::size_t> controls,
                        std::size_t target);

  /// Multiplies amplitude of every basis state s by phase(s) — used for
  /// oracle diagonals (Grover) where the phase is +/-1 or exp(i theta).
  template <typename PhaseFn>
  void apply_diagonal(PhaseFn&& phase) {
    for (std::uint64_t s = 0; s < amps_.size(); ++s) amps_[s] *= phase(s);
  }

  /// Applies a basis-state permutation |s> -> |perm(s)>. perm must be a
  /// bijection on [0, 2^n). Used for classical-reversible oracles (modular
  /// multiplication in Shor, substring-match marking).
  template <typename PermFn>
  void apply_permutation(PermFn&& perm) {
    std::vector<Complex> next(amps_.size());
    for (std::uint64_t s = 0; s < amps_.size(); ++s)
      next[perm(s)] += amps_[s];
    amps_ = std::move(next);
  }

  /// Swaps two qubits' labels (implemented as amplitude permutation).
  void swap_qubits(std::size_t a, std::size_t b);

  /// Probability of measuring `qubit` as 1.
  Real probability_one(std::size_t qubit) const;

  /// Probability distribution over all basis states (|amp|^2).
  std::vector<Real> probabilities() const;

  /// Samples a full computational-basis measurement without collapsing.
  std::uint64_t sample(core::Rng& rng) const;

  /// Measures one qubit, collapses the state, returns the outcome.
  bool measure_qubit(std::size_t qubit, core::Rng& rng);

  /// L2 norm of the state (1 within numerical error for unitary evolution).
  Real norm() const;

  /// |<this|other>|^2.
  Real fidelity(const StateVector& other) const;

 private:
  std::size_t num_qubits_;
  std::vector<Complex> amps_;
};

}  // namespace rebooting::quantum
