// Runtime layer of the Fig. 2 stack: takes a (logical) circuit, drives it
// through the compiler onto the simulated device, executes shots with an
// optional noise model, and reports per-layer statistics upward — exactly
// the "runtime support ... interacting with the controlling classical
// processor" role the paper assigns this layer.
#pragma once

#include <map>
#include <optional>

#include "core/accelerator.h"
#include "core/random.h"
#include "quantum/compiler.h"

namespace rebooting::quantum {

/// Stochastic Pauli error channel applied gate-by-gate during execution
/// (Monte-Carlo trajectories), plus classical measurement bit flips.
struct NoiseModel {
  core::Real depolarizing_1q = 0.0;  ///< per single-qubit gate
  core::Real depolarizing_2q = 0.0;  ///< per two-qubit gate
  core::Real readout_flip = 0.0;     ///< per measured bit

  bool enabled() const {
    return depolarizing_1q > 0.0 || depolarizing_2q > 0.0 || readout_flip > 0.0;
  }
};

struct ExecutionResult {
  /// Histogram of measured basis states over all shots (keyed by the
  /// *logical* bit pattern; the runtime undoes the routing permutation).
  std::map<std::uint64_t, std::size_t> counts;
  std::size_t shots = 0;
  CompileReport compile_report;
  core::Real device_seconds = 0.0;  ///< scheduled cycles x cycle time x shots

  /// Most frequent outcome (0 if no shots).
  std::uint64_t mode() const;
  /// Fraction of shots equal to `state`.
  core::Real frequency(std::uint64_t state) const;
};

struct QuantumDeviceConfig {
  Topology topology = Topology::all_to_all(8);
  NoiseModel noise{};
  core::Real cycle_seconds = 20e-9;  ///< one device cycle (transmon-scale)
  bool enable_optimizer = true;
};

/// The quantum accelerator of Fig. 1: owns the device config and offers the
/// typed run() API; registered with a HostSystem via the Accelerator base.
class QuantumAccelerator final : public core::Accelerator {
 public:
  explicit QuantumAccelerator(QuantumDeviceConfig config);

  std::string name() const override { return "Quantum accelerator (state-vector device)"; }
  core::AcceleratorKind kind() const override {
    return core::AcceleratorKind::kQuantum;
  }
  std::vector<std::string> stack_layers() const override {
    return {"Application (algorithm host code)",
            "Quantum algorithm (circuit construction)",
            "Compiler (decompose / route / optimize / schedule)",
            "QISA (instruction set)",
            "Microarchitecture (cycle-accurate schedule)",
            "Device (state-vector simulator)"};
  }

  const QuantumDeviceConfig& config() const { return config_; }

  /// Factory for sched::Scheduler worker pools: each invocation constructs an
  /// independent device replica with this config.
  static core::AcceleratorFactory factory(QuantumDeviceConfig config);

  /// Compiles and executes `shots` measurement shots of the circuit. When
  /// the circuit has no explicit measure operations every qubit is measured
  /// at the end. Noise (if configured) resamples a trajectory per shot;
  /// noiseless execution simulates once and samples the distribution.
  ExecutionResult run(const Circuit& circuit, std::size_t shots,
                      core::Rng& rng) const;

 private:
  std::uint64_t run_single_trajectory(const Circuit& compiled,
                                      std::span<const std::size_t> final_map,
                                      std::size_t logical_qubits,
                                      core::Rng& rng) const;

  QuantumDeviceConfig config_;
};

}  // namespace rebooting::quantum
