// QAOA (Farhi et al.) for Ising ground-state search — the quantum
// counterpart to the paper's Sec. IV optimization workloads, built on the
// same accelerator substrate. Included as the cross-paradigm extension the
// paper invites: its Sec. I groups adiabatic/quantum optimization with
// memcomputing as the post-von-Neumann answers to combinatorial problems
// (the cross_paradigm_ising bench runs all three on one instance).
//
// Spins map to qubits (one each); the cost Hamiltonian is the Ising energy
// H = -sum J_ij s_i s_j applied as a diagonal phase, the mixer is RX on
// every qubit. Angles are optimized by per-layer coordinate grid descent on
// the exact expectation (computable here because the device is simulated).
#pragma once

#include <cstddef>
#include <vector>

#include "core/random.h"
#include "quantum/state.h"

namespace rebooting::quantum {

/// Minimal Ising view (kept independent of the memcomputing module; bridge
/// from memcomputing::IsingModel bond-by-bond).
struct IsingBondView {
  std::size_t i = 0;
  std::size_t j = 0;
  core::Real coupling = 1.0;  ///< H = -sum J s_i s_j
};

struct QaoaOptions {
  std::size_t layers = 2;           ///< p
  std::size_t grid_points = 24;     ///< per-angle resolution of the search
  std::size_t sweeps = 2;           ///< coordinate-descent passes over angles
  std::size_t samples = 512;        ///< measurement shots at the optimum
};

struct QaoaResult {
  std::vector<std::int8_t> best_spins;  ///< lowest-energy sampled state
  core::Real best_energy = 0.0;
  core::Real expected_energy = 0.0;     ///< <H> at the optimized angles
  std::vector<core::Real> gammas;       ///< optimized cost angles (size p)
  std::vector<core::Real> betas;        ///< optimized mixer angles (size p)
  std::size_t circuit_evaluations = 0;  ///< state preparations spent
};

/// Ising energy of a spin configuration under the bond list.
core::Real ising_energy(const std::vector<IsingBondView>& bonds,
                        const std::vector<std::int8_t>& spins);

/// Runs QAOA on `num_spins` qubits (<= 20 for the simulator).
QaoaResult qaoa_ising(std::size_t num_spins,
                      const std::vector<IsingBondView>& bonds, core::Rng& rng,
                      const QaoaOptions& opts = {});

}  // namespace rebooting::quantum
