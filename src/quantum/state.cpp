#include "quantum/state.h"

#include <cmath>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace rebooting::quantum {

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > 26)
    throw std::invalid_argument("StateVector: qubit count out of range [1,26]");
  amps_.assign(1ull << num_qubits, Complex{0.0, 0.0});
  amps_[0] = Complex{1.0, 0.0};
}

void StateVector::apply_1q(const Gate2x2& g, std::size_t target) {
  TELEM_SPAN("quantum.apply_1q");
  if (target >= num_qubits_)
    throw std::invalid_argument("apply_1q: target out of range");
  const std::uint64_t bit = 1ull << target;
  const std::uint64_t dim = amps_.size();
  for (std::uint64_t base = 0; base < dim; ++base) {
    if (base & bit) continue;  // visit each pair once, from its |0> member
    const std::uint64_t other = base | bit;
    const Complex a0 = amps_[base];
    const Complex a1 = amps_[other];
    amps_[base] = g.m00 * a0 + g.m01 * a1;
    amps_[other] = g.m10 * a0 + g.m11 * a1;
  }
}

void StateVector::apply_controlled(const Gate2x2& g,
                                   std::span<const std::size_t> controls,
                                   std::size_t target) {
  TELEM_SPAN("quantum.apply_controlled");
  if (target >= num_qubits_)
    throw std::invalid_argument("apply_controlled: target out of range");
  std::uint64_t cmask = 0;
  for (const std::size_t c : controls) {
    if (c >= num_qubits_ || c == target)
      throw std::invalid_argument("apply_controlled: bad control");
    cmask |= 1ull << c;
  }
  const std::uint64_t bit = 1ull << target;
  const std::uint64_t dim = amps_.size();
  for (std::uint64_t base = 0; base < dim; ++base) {
    if (base & bit) continue;
    if ((base & cmask) != cmask) continue;
    const std::uint64_t other = base | bit;
    const Complex a0 = amps_[base];
    const Complex a1 = amps_[other];
    amps_[base] = g.m00 * a0 + g.m01 * a1;
    amps_[other] = g.m10 * a0 + g.m11 * a1;
  }
}

void StateVector::swap_qubits(std::size_t a, std::size_t b) {
  if (a >= num_qubits_ || b >= num_qubits_)
    throw std::invalid_argument("swap_qubits: out of range");
  if (a == b) return;
  const std::uint64_t ba = 1ull << a;
  const std::uint64_t bb = 1ull << b;
  for (std::uint64_t s = 0; s < amps_.size(); ++s) {
    const bool va = s & ba;
    const bool vb = s & bb;
    if (va && !vb) std::swap(amps_[s], amps_[(s ^ ba) | bb]);
  }
}

Real StateVector::probability_one(std::size_t qubit) const {
  if (qubit >= num_qubits_)
    throw std::invalid_argument("probability_one: out of range");
  const std::uint64_t bit = 1ull << qubit;
  Real p = 0.0;
  for (std::uint64_t s = 0; s < amps_.size(); ++s)
    if (s & bit) p += std::norm(amps_[s]);
  return p;
}

std::vector<Real> StateVector::probabilities() const {
  std::vector<Real> p(amps_.size());
  for (std::uint64_t s = 0; s < amps_.size(); ++s) p[s] = std::norm(amps_[s]);
  return p;
}

std::uint64_t StateVector::sample(core::Rng& rng) const {
  Real r = rng.uniform();
  for (std::uint64_t s = 0; s + 1 < amps_.size(); ++s) {
    r -= std::norm(amps_[s]);
    if (r <= 0.0) return s;
  }
  return amps_.size() - 1;
}

bool StateVector::measure_qubit(std::size_t qubit, core::Rng& rng) {
  TELEM_SPAN("quantum.measure");
  const Real p1 = probability_one(qubit);
  const bool outcome = rng.uniform() < p1;
  const Real keep = outcome ? p1 : 1.0 - p1;
  const Real scale = keep > 0.0 ? 1.0 / std::sqrt(keep) : 0.0;
  const std::uint64_t bit = 1ull << qubit;
  for (std::uint64_t s = 0; s < amps_.size(); ++s) {
    if (((s & bit) != 0) == outcome)
      amps_[s] *= scale;
    else
      amps_[s] = Complex{0.0, 0.0};
  }
  return outcome;
}

Real StateVector::norm() const {
  Real n = 0.0;
  for (const Complex& a : amps_) n += std::norm(a);
  return std::sqrt(n);
}

Real StateVector::fidelity(const StateVector& other) const {
  if (other.dimension() != dimension())
    throw std::invalid_argument("fidelity: dimension mismatch");
  Complex overlap{0.0, 0.0};
  for (std::uint64_t s = 0; s < amps_.size(); ++s)
    overlap += std::conj(amps_[s]) * other.amps_[s];
  return std::norm(overlap);
}

}  // namespace rebooting::quantum
