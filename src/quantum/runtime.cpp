#include "quantum/runtime.h"

#include <algorithm>
#include <stdexcept>

#include "quantum/canonical.h"
#include "telemetry/telemetry.h"

namespace rebooting::quantum {

std::uint64_t ExecutionResult::mode() const {
  std::uint64_t best_state = 0;
  std::size_t best_count = 0;
  for (const auto& [state, count] : counts)
    if (count > best_count) {
      best_count = count;
      best_state = state;
    }
  return best_state;
}

core::Real ExecutionResult::frequency(std::uint64_t state) const {
  if (shots == 0) return 0.0;
  const auto it = counts.find(state);
  return it == counts.end()
             ? 0.0
             : static_cast<core::Real>(it->second) / static_cast<core::Real>(shots);
}

QuantumAccelerator::QuantumAccelerator(QuantumDeviceConfig config)
    : config_(std::move(config)) {}

core::AcceleratorFactory QuantumAccelerator::factory(
    QuantumDeviceConfig config) {
  return [config = std::move(config)]() -> std::shared_ptr<core::Accelerator> {
    return std::make_shared<QuantumAccelerator>(config);
  };
}

namespace {

/// Applies one uniformly random non-identity Pauli to `qubit`.
void random_pauli(StateVector& state, std::size_t qubit, core::Rng& rng) {
  const std::uint64_t which = rng.uniform_index(3);
  const GateKind kinds[] = {GateKind::kX, GateKind::kY, GateKind::kZ};
  state.apply_1q(gate_matrix(kinds[which]), qubit);
}

}  // namespace

std::uint64_t QuantumAccelerator::run_single_trajectory(
    const Circuit& compiled, std::span<const std::size_t> final_map,
    std::size_t logical_qubits, core::Rng& rng) const {
  StateVector state(compiled.num_qubits());
  const NoiseModel& noise = config_.noise;

  std::uint64_t measured_bits = 0;
  std::uint64_t measured_mask = 0;

  for (const Operation& op : compiled.operations()) {
    if (op.kind == GateKind::kMeasure) {
      const bool bit = state.measure_qubit(op.qubits[0], rng);
      const bool flipped =
          noise.readout_flip > 0.0 && rng.bernoulli(noise.readout_flip);
      if (bit != flipped) measured_bits |= 1ull << op.qubits[0];
      measured_mask |= 1ull << op.qubits[0];
      continue;
    }
    apply_operation(state, op);
    const core::Real p = op.qubits.size() > 1 ? noise.depolarizing_2q
                                              : noise.depolarizing_1q;
    if (p > 0.0)
      for (const std::size_t q : op.qubits)
        if (rng.bernoulli(p)) random_pauli(state, q, rng);
  }

  // Any physical qubit not explicitly measured is sampled at the end.
  std::uint64_t sampled = state.sample(rng);
  if (noise.readout_flip > 0.0) {
    for (std::size_t q = 0; q < compiled.num_qubits(); ++q)
      if (!(measured_mask & (1ull << q)) && rng.bernoulli(noise.readout_flip))
        sampled ^= 1ull << q;
  }
  const std::uint64_t physical_bits =
      (sampled & ~measured_mask) | measured_bits;

  // Undo the routing permutation: logical bit l lives at physical
  // final_map[l].
  std::uint64_t logical_bits = 0;
  for (std::size_t l = 0; l < logical_qubits; ++l)
    if (physical_bits & (1ull << final_map[l])) logical_bits |= 1ull << l;
  return logical_bits;
}

ExecutionResult QuantumAccelerator::run(const Circuit& circuit,
                                        std::size_t shots,
                                        core::Rng& rng) const {
  if (shots == 0) throw std::invalid_argument("run: shots must be > 0");
  TELEM_SPAN("quantum.run");
  TELEM_TRACE_SCOPE("quantum.run");
  TELEM_COUNT("quantum.shots", static_cast<core::Real>(shots));
  // Content-addressed compile: hash-equal circuits share one cached program
  // compiled from the canonical (first-use relabeled) form; `perm` maps our
  // labels into the canonical ones, so composing it with the program's
  // routing map recovers original-logical -> physical.
  std::vector<std::size_t> perm;
  const std::shared_ptr<const CompiledProgram> prog_ptr =
      compile_cached(circuit, config_.topology, config_.enable_optimizer,
                     &perm);
  const CompiledProgram& prog = *prog_ptr;
  std::vector<std::size_t> final_map(circuit.num_qubits());
  for (std::size_t l = 0; l < circuit.num_qubits(); ++l)
    final_map[l] = prog.final_map[perm[l]];

  ExecutionResult result;
  result.shots = shots;
  result.compile_report = prog.report;
  result.device_seconds = static_cast<core::Real>(prog.report.total_cycles) *
                          config_.cycle_seconds *
                          static_cast<core::Real>(shots);

  const bool has_measure_ops = std::any_of(
      prog.circuit.operations().begin(), prog.circuit.operations().end(),
      [](const Operation& op) { return op.kind == GateKind::kMeasure; });

  TELEM_SPAN("quantum.execute");
  TELEM_TRACE_SCOPE("quantum.execute");
  if (!config_.noise.enabled() && !has_measure_ops) {
    // Fast path: one simulation, sample the final distribution many times.
    StateVector state(prog.circuit.num_qubits());
    for (const Operation& op : prog.circuit.operations())
      apply_operation(state, op);
    for (std::size_t s = 0; s < shots; ++s) {
      const std::uint64_t physical = state.sample(rng);
      std::uint64_t logical = 0;
      for (std::size_t l = 0; l < circuit.num_qubits(); ++l)
        if (physical & (1ull << final_map[l])) logical |= 1ull << l;
      ++result.counts[logical];
    }
    return result;
  }

  for (std::size_t s = 0; s < shots; ++s)
    ++result.counts[run_single_trajectory(prog.circuit, final_map,
                                          circuit.num_qubits(), rng)];
  return result;
}

}  // namespace rebooting::quantum
